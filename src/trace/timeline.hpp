// Timeline reconstruction: turns the flat event stream of a run into
// per-task job histories with execution spans — the data behind the
// paper's time-series charts (§5) and the run statistics.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sched/task.hpp"
#include "trace/recorder.hpp"

namespace rtft::trace {

/// A maximal interval during which one job held the CPU.
struct ExecutionSpan {
  Instant begin;
  Instant end;
};

/// History of one released job.
struct JobRecord {
  std::int64_t index = 0;
  Instant release;
  Instant deadline;                  ///< release + relative deadline.
  std::optional<Instant> end;        ///< completion date, if it completed.
  std::optional<Instant> aborted_at; ///< stop date, if it was aborted.
  bool missed = false;               ///< a deadline-miss was recorded.
  std::vector<ExecutionSpan> spans;  ///< CPU intervals, in time order.

  /// Response time, when the job completed.
  [[nodiscard]] std::optional<Duration> response() const {
    if (!end) return std::nullopt;
    return *end - release;
  }
};

/// History of one task over the run.
struct TaskTimeline {
  std::uint32_t task = 0;
  std::string name;
  std::vector<JobRecord> jobs;             ///< by job index.
  std::vector<Instant> detector_fires;     ///< the paper's ▲ marks.
  std::vector<Instant> fault_detections;
  std::optional<Instant> stopped_at;       ///< kTaskStopped date.
};

/// The whole run.
struct SystemTimeline {
  Instant start;                       ///< epoch of the run.
  Instant end;                         ///< horizon.
  std::vector<TaskTimeline> tasks;     ///< TaskId order.
  /// CPU-idle intervals, derived as the complement of all execution
  /// spans. Overhead injections (context switches, detector fire costs)
  /// are not attributed to any task and appear as idle here.
  std::vector<ExecutionSpan> idle;
};

/// Reconstructs the timeline of a run.
///
/// `ts` supplies names, deadlines and offsets (the recorder stores only
/// task indices); `horizon` closes any span still open at the end.
[[nodiscard]] SystemTimeline build_timeline(const sched::TaskSet& ts,
                                            const Recorder& recorder,
                                            Instant horizon);

}  // namespace rtft::trace
