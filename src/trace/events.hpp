// Trace event model (paper §5).
//
// The paper records "the key dates in the system life" — job begins, job
// ends, detector releases — into in-memory buffers, flushed to a log file
// only after the run so that I/O never perturbs the system. The recorder
// here follows the same discipline: fixed-size POD events appended to a
// preallocated vector.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/time.hpp"

namespace rtft::trace {

/// Sentinel for events not attached to a task (timers, engine lifecycle).
inline constexpr std::uint32_t kNoTask = 0xffffffffu;
/// Sentinel for events not attached to a job.
inline constexpr std::int64_t kNoJob = -1;

/// Every observable occurrence in an execution.
enum class EventKind : std::uint8_t {
  kJobRelease,     ///< job became eligible (nominal release date).
  kJobStart,       ///< job first obtained the CPU.
  kJobPreempted,   ///< job lost the CPU to a higher-priority activity.
  kJobResumed,     ///< job regained the CPU.
  kJobEnd,         ///< job completed its work. detail = response time (ns).
  kJobAborted,     ///< job terminated by a stop request before completing.
  kDeadlineMiss,   ///< job's deadline passed without completion.
  kTaskStopped,    ///< task terminated by a treatment (no future releases).
  kStopRequested,  ///< treatment asked the task to stop.
  kTimerFire,      ///< a timer handler ran. detail = timer id.
  kDetectorFire,   ///< fault detector released (paper's ▲ marks).
  kFaultDetected,  ///< detector found the watched job unfinished.
  kOverrunInjected,///< fault injection gave this job extra cost (detail=ns).
  kIdleStart,      ///< CPU went idle.
  kIdleEnd,        ///< CPU left idle.
};

/// Short stable name for logs and golden tests.
[[nodiscard]] std::string_view to_string(EventKind kind);

/// One trace record. POD; 32 bytes.
struct TraceEvent {
  Instant time;                 ///< virtual (or wall) date of the event.
  std::int64_t job = kNoJob;    ///< 0-based job index, if applicable.
  std::int64_t detail = 0;      ///< kind-specific payload (see EventKind).
  std::uint32_t task = kNoTask; ///< TaskId, if applicable.
  EventKind kind{};
};

}  // namespace rtft::trace
