// SVG time-series chart — the vector-graphics counterpart of the ASCII
// chart, matching the paper's figure layout: one lane per task, execution
// rectangles, release/deadline arrows, detector diamonds, stop crosses.
#pragma once

#include <string>

#include "trace/timeline.hpp"

namespace rtft::trace {

struct SvgChartOptions {
  /// Window to render; a default-constructed range means the whole run.
  Instant from;
  Instant to;
  int width_px = 960;
  int lane_height_px = 48;
  bool show_grid = true;
};

/// Renders the timeline as a standalone SVG document (deterministic).
[[nodiscard]] std::string render_svg_chart(const SystemTimeline& tl,
                                           const SvgChartOptions& opts = {});

}  // namespace rtft::trace
