// Trace validation: structural and scheduling-theoretic checks over a
// recorded run. Used by the property/stress test suites to certify every
// execution the engine produces, and available to users as a debugging
// aid for their own scenarios.
//
// Checks performed:
//   * event dates are non-decreasing;
//   * per task: releases are consecutive (job k then k+1) and
//     period-spaced; every start/end/abort refers to a released job;
//   * jobs of one task execute in job order and at most one terminal
//     event (end/abort) each;
//   * execution spans of *different tasks* never overlap (one CPU);
//   * fixed-priority compliance: while a task executes, no strictly
//     higher-priority task has a released, unfinished, unstarted-or-
//     preempted job (modulo instantaneous event boundaries).
#pragma once

#include <string>
#include <vector>

#include "sched/task.hpp"
#include "trace/recorder.hpp"

namespace rtft::trace {

/// One validation finding.
struct Violation {
  Instant time;
  std::string message;
};

struct ValidationResult {
  std::vector<Violation> violations;
  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Validates a recorded run against the task set that produced it.
[[nodiscard]] ValidationResult validate_trace(const sched::TaskSet& ts,
                                              const Recorder& recorder);

}  // namespace rtft::trace
