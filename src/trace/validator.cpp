#include "trace/validator.hpp"

#include <optional>
#include <sstream>

#include "common/assert.hpp"

namespace rtft::trace {
namespace {

struct TaskState {
  std::int64_t released = 0;        ///< next expected release index.
  std::optional<Instant> last_release;
  std::int64_t retired = 0;         ///< jobs with a terminal event.
  bool in_flight = false;           ///< released > retired jobs exist.
  bool running = false;
  bool started_current = false;     ///< current job has run before.
  std::int64_t current = -1;        ///< job index currently executing/preempted.
  bool stopped = false;
};

}  // namespace

ValidationResult validate_trace(const sched::TaskSet& ts,
                                const Recorder& recorder) {
  ValidationResult result;
  std::vector<TaskState> state(ts.size());
  constexpr std::size_t kNoOwner = static_cast<std::size_t>(-1);
  std::size_t cpu_owner = kNoOwner;  // task currently executing
  Instant prev = Instant::epoch();

  const auto violate = [&](Instant time, std::string message) {
    result.violations.push_back(Violation{time, std::move(message)});
  };

  for (const TraceEvent& e : recorder.events()) {
    if (e.time < prev) {
      violate(e.time, "event dates go backwards");
    }
    prev = e.time;
    if (e.task == kNoTask) continue;
    if (e.task >= ts.size()) {
      violate(e.time, "event references unknown task index " +
                          std::to_string(e.task));
      continue;
    }
    const auto t = static_cast<std::size_t>(e.task);
    TaskState& s = state[t];
    const std::string name = ts[t].name;

    switch (e.kind) {
      case EventKind::kJobRelease: {
        if (e.job != s.released) {
          violate(e.time, name + ": release of job " +
                              std::to_string(e.job) + ", expected " +
                              std::to_string(s.released));
        }
        if (s.last_release &&
            e.time - *s.last_release != ts[t].period) {
          violate(e.time, name + ": releases not period-spaced");
        }
        if (s.stopped) violate(e.time, name + ": release after stop");
        s.last_release = e.time;
        s.released++;
        break;
      }
      case EventKind::kJobStart:
      case EventKind::kJobResumed: {
        const bool resume = e.kind == EventKind::kJobResumed;
        if (e.job >= s.released) {
          violate(e.time, name + ": job " + std::to_string(e.job) +
                              " runs before its release");
        }
        if (resume != (s.current == e.job && s.started_current)) {
          violate(e.time, name + ": start/resume kind mismatch for job " +
                              std::to_string(e.job));
        }
        if (s.running) {
          violate(e.time, name + ": started while already running");
        }
        if (cpu_owner != kNoOwner && cpu_owner != t) {
          violate(e.time, name + ": CPU handed over without preempting '" +
                              ts[cpu_owner].name + "'");
        }
        // Fixed-priority compliance: nobody strictly higher may have a
        // released, unfinished job waiting (whether or not it has run
        // yet). Stopped tasks are exempt — their skipped backlog never
        // retires.
        for (std::size_t o = 0; o < ts.size(); ++o) {
          if (o == t || state[o].running || state[o].stopped) continue;
          if (state[o].released <= state[o].retired) continue;
          if (ts[o].priority > ts[t].priority) {
            violate(e.time, name + ": dispatched while higher-priority '" +
                                ts[o].name + "' is ready");
          }
        }
        cpu_owner = t;
        s.running = true;
        s.started_current = true;
        s.current = e.job;
        break;
      }
      case EventKind::kJobPreempted: {
        if (!s.running || s.current != e.job) {
          violate(e.time, name + ": preempted while not running");
        }
        s.running = false;
        if (cpu_owner == t) cpu_owner = kNoOwner;
        break;
      }
      case EventKind::kJobEnd:
      case EventKind::kJobAborted: {
        const bool end = e.kind == EventKind::kJobEnd;
        if (end && (!s.running || s.current != e.job)) {
          violate(e.time, name + ": completion of a non-running job");
        }
        if (e.job >= s.released) {
          violate(e.time,
                  name + ": terminal event for unreleased job " +
                      std::to_string(e.job));
        }
        if (s.running && s.current == e.job) {
          s.running = false;
          if (cpu_owner == t) cpu_owner = kNoOwner;
        }
        if (s.current == e.job) {
          s.current = -1;
          s.started_current = false;
        }
        s.retired++;
        break;
      }
      case EventKind::kTaskStopped:
        s.stopped = true;
        break;
      default:
        break;
    }
  }
  return result;
}

std::string ValidationResult::summary() const {
  if (ok()) return "trace ok";
  std::ostringstream out;
  out << violations.size() << " violation(s):\n";
  for (const Violation& v : violations) {
    out << "  " << to_string(v.time) << "  " << v.message << '\n';
  }
  return out.str();
}

}  // namespace rtft::trace
