// Pluggable trace sinks — observation decoupled from execution.
//
// The paper's measurement discipline (§5) is that observing a run must
// not perturb it: events are buffered in memory and flushed only after
// the run. The Sink interface generalizes that discipline into
// pay-for-what-you-use observation: the engine (and everything layered
// on it — detectors, treatments, the wall-clock executor) writes events
// through a Sink pointer and never knows what, if anything, is kept.
//
//   NullSink     — discards everything; a run costs zero observation.
//   CountingSink — per-task counters only (what sweep verdicts need);
//                  O(tasks) memory however long the run.
//   Recorder     — the full-fidelity event buffer (trace/recorder.hpp),
//                  for charts, logs, validation and golden tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/events.hpp"

namespace rtft::trace {

/// Number of EventKind enumerators (kIdleEnd is last).
inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kIdleEnd) + 1;

/// Where trace events go. Implementations must tolerate any well-formed
/// event stream; record() is called on the execution hot path, so it
/// must not perform I/O and should not allocate in steady state.
class Sink {
 public:
  virtual ~Sink() = default;

  virtual void record(const TraceEvent& event) = 0;

  /// Convenience: build + record.
  void record(Instant time, EventKind kind, std::uint32_t task = kNoTask,
              std::int64_t job = kNoJob, std::int64_t detail = 0) {
    record(TraceEvent{time, job, detail, task, kind});
  }
};

/// Discards every event. The engine's default when no sink is supplied.
class NullSink final : public Sink {
 public:
  using Sink::record;
  void record(const TraceEvent&) override {}

  /// Shared stateless instance.
  static NullSink& instance();
};

/// Per-task counters maintained by a CountingSink — the same facts an
/// engine's TaskStats carries, derived purely from the event stream.
struct TaskCounters {
  std::int64_t released = 0;
  std::int64_t started = 0;         ///< kJobStart (first CPU acquisition).
  std::int64_t completed = 0;
  std::int64_t missed = 0;
  std::int64_t aborted = 0;
  std::int64_t preemptions = 0;
  std::int64_t detector_fires = 0;
  std::int64_t faults_detected = 0;
  bool stopped = false;
  Duration max_response;            ///< over kJobEnd events.
  Duration last_response;
};

/// Maintains only per-task counters: constant work per event, O(tasks)
/// memory for a run of any length. This is what a scenario sweep needs —
/// verdict counters without the full-trace cost.
class CountingSink final : public Sink {
 public:
  using Sink::record;
  void record(const TraceEvent& event) override;

  /// Forgets everything; keeps allocated capacity for reuse.
  void reset();

  /// Counters for one task (zeroes if the task never appeared).
  [[nodiscard]] const TaskCounters& counters(std::size_t task) const;
  /// One past the largest task id seen since the last reset().
  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  /// Total events of one kind, across tasks and taskless events.
  [[nodiscard]] std::int64_t total(EventKind kind) const {
    return kind_totals_[static_cast<std::size_t>(kind)];
  }

 private:
  std::vector<TaskCounters> tasks_;
  std::int64_t kind_totals_[kEventKindCount] = {};
};

}  // namespace rtft::trace
