// Pluggable trace sinks — observation decoupled from execution.
//
// The paper's measurement discipline (§5) is that observing a run must
// not perturb it: events are buffered in memory and flushed only after
// the run. The Sink interface generalizes that discipline into
// pay-for-what-you-use observation: the engine (and everything layered
// on it — detectors, treatments, the wall-clock executor) writes events
// through a Sink pointer and never knows what, if anything, is kept.
//
//   NullSink     — discards everything; a run costs zero observation.
//   CountingSink — per-task counters only (what sweep verdicts need);
//                  O(tasks) memory however long the run.
//   Recorder     — the full-fidelity event buffer (trace/recorder.hpp),
//                  for charts, logs, validation and golden tests.
//
// The virtual seam above is the *general* observation path. Sweep-scale
// runs select a compile-time mode instead (SinkMode below): the engine
// dispatches on a plain enum in its inner loop — no virtual call per
// event — and counting becomes batched: events accumulate in an
// engine-local CounterBank and flush into the configured CountingSink
// at run boundaries via absorb(). Both paths produce identical counters
// (tests/runtime/observation_equivalence_test.cpp pins this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/events.hpp"

namespace rtft::trace {

/// Number of EventKind enumerators (kIdleEnd is last).
inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kIdleEnd) + 1;

/// How an engine observes its own event stream.
enum class SinkMode : std::uint8_t {
  /// Every event goes through the runtime-polymorphic Sink* seam —
  /// required for Recorder (full traces), FtSystem composition and the
  /// wall-clock executor; retained as the equivalence oracle.
  kVirtual,
  /// Events are discarded by a branch on this enum: zero virtual calls
  /// and zero counter writes per event.
  kStaticNull,
  /// Events accumulate in an engine-local CounterBank (no virtual call
  /// per event) and flush into EngineOptions::counting_sink when a
  /// run() / run_until() returns.
  kStaticCounting,
};

/// Where trace events go. Implementations must tolerate any well-formed
/// event stream; record() is called on the execution hot path, so it
/// must not perform I/O and should not allocate in steady state.
class Sink {
 public:
  virtual ~Sink() = default;

  virtual void record(const TraceEvent& event) = 0;

  /// Convenience: build + record.
  void record(Instant time, EventKind kind, std::uint32_t task = kNoTask,
              std::int64_t job = kNoJob, std::int64_t detail = 0) {
    record(TraceEvent{time, job, detail, task, kind});
  }
};

/// Discards every event. The engine's default when no sink is supplied.
class NullSink final : public Sink {
 public:
  using Sink::record;
  void record(const TraceEvent&) override {}

  /// Shared stateless instance.
  static NullSink& instance();
};

/// Per-task counters maintained by a CounterBank — the same facts an
/// engine's TaskStats carries, derived purely from the event stream.
struct TaskCounters {
  std::int64_t released = 0;
  std::int64_t started = 0;         ///< kJobStart (first CPU acquisition).
  std::int64_t completed = 0;
  std::int64_t missed = 0;
  std::int64_t aborted = 0;
  std::int64_t preemptions = 0;
  std::int64_t detector_fires = 0;
  std::int64_t faults_detected = 0;
  bool stopped = false;
  Duration max_response;            ///< over kJobEnd events.
  Duration last_response;
};

/// The flat counting core shared by CountingSink (per-event, virtual
/// seam) and the engine's batched static-counting mode (accumulate
/// locally, absorb at run boundaries). add() is non-virtual and inline:
/// it is *the* per-event cost of counted observation.
class CounterBank {
 public:
  /// Folds one event into the bank. Identical semantics to the classic
  /// CountingSink::record.
  void add(const TraceEvent& event) {
    kind_totals_[static_cast<std::size_t>(event.kind)]++;
    if (event.task == kNoTask) return;
    const auto task = static_cast<std::size_t>(event.task);
    if (task >= tasks_.size()) tasks_.resize(task + 1);
    TaskCounters& c = tasks_[task];
    switch (event.kind) {
      case EventKind::kJobRelease: c.released++; break;
      case EventKind::kJobStart: c.started++; break;
      case EventKind::kJobEnd: {
        c.completed++;
        const Duration response = Duration::ns(event.detail);
        c.last_response = response;
        if (response > c.max_response) c.max_response = response;
        break;
      }
      case EventKind::kDeadlineMiss: c.missed++; break;
      case EventKind::kJobAborted: c.aborted++; break;
      case EventKind::kJobPreempted: c.preemptions++; break;
      case EventKind::kDetectorFire: c.detector_fires++; break;
      case EventKind::kFaultDetected: c.faults_detected++; break;
      case EventKind::kTaskStopped: c.stopped = true; break;
      default: break;  // resumed/timers/idle/etc. carry no counter.
    }
  }

  /// Merges another bank into this one. Counts add; `stopped` ors;
  /// `max_response` takes the max; `last_response` is overridden only
  /// when `delta` completed at least one job of the task — so merging
  /// the per-run_until() deltas of a split run leaves exactly the
  /// counters one contiguous bank would hold.
  void merge(const CounterBank& delta);

  /// Forgets everything; keeps allocated capacity for reuse.
  void clear();

  /// Pre-sizes per-task storage (capacity hint; growing later is safe).
  void reserve(std::size_t tasks) { tasks_.reserve(tasks); }

  /// Counters for one task (zeroes if the task never appeared).
  [[nodiscard]] const TaskCounters& counters(std::size_t task) const;
  /// One past the largest task id seen since the last clear().
  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  /// Total events of one kind, across tasks and taskless events.
  [[nodiscard]] std::int64_t total(EventKind kind) const {
    return kind_totals_[static_cast<std::size_t>(kind)];
  }

 private:
  std::vector<TaskCounters> tasks_;
  std::int64_t kind_totals_[kEventKindCount] = {};
};

/// Maintains only per-task counters: constant work per event, O(tasks)
/// memory for a run of any length. This is what a scenario sweep needs —
/// verdict counters without the full-trace cost. In the engine's
/// batched mode the per-event add() happens in an engine-local bank and
/// lands here through absorb() instead.
class CountingSink final : public Sink {
 public:
  using Sink::record;
  void record(const TraceEvent& event) override { bank_.add(event); }

  /// Merges a batch of counters accumulated elsewhere (the engine's
  /// run-boundary flush); see CounterBank::merge for the semantics.
  void absorb(const CounterBank& delta) { bank_.merge(delta); }

  /// Forgets everything; keeps allocated capacity for reuse.
  void reset() { bank_.clear(); }

  /// Counters for one task (zeroes if the task never appeared).
  [[nodiscard]] const TaskCounters& counters(std::size_t task) const {
    return bank_.counters(task);
  }
  /// One past the largest task id seen since the last reset().
  [[nodiscard]] std::size_t task_count() const { return bank_.task_count(); }
  /// Total events of one kind, across tasks and taskless events.
  [[nodiscard]] std::int64_t total(EventKind kind) const {
    return bank_.total(kind);
  }

 private:
  CounterBank bank_;
};

}  // namespace rtft::trace
