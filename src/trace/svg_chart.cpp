#include "trace/svg_chart.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"
#include "common/strings.hpp"

namespace rtft::trace {
namespace {

constexpr int kMarginLeft = 90;
constexpr int kMarginTop = 24;
constexpr int kMarginBottom = 28;

/// Muted qualitative palette, one colour per lane (cycled).
const char* lane_color(std::size_t i) {
  static const char* kColors[] = {"#4878d0", "#ee854a", "#6acc64",
                                  "#d65f5f", "#956cb4", "#8c613c"};
  return kColors[i % (sizeof(kColors) / sizeof(kColors[0]))];
}

std::string fmt(double v) { return format_fixed(v, 2); }

}  // namespace

std::string render_svg_chart(const SystemTimeline& tl,
                             const SvgChartOptions& opts) {
  Instant from = opts.from;
  Instant to = opts.to;
  if (from == Instant() && to == Instant()) {
    from = tl.start;
    to = tl.end;
  }
  RTFT_EXPECTS(to > from, "chart window must be non-empty");
  RTFT_EXPECTS(opts.width_px > kMarginLeft + 40, "chart too narrow");

  const double plot_w = opts.width_px - kMarginLeft - 16;
  const double span_ns = static_cast<double>((to - from).count());
  const auto x_of = [&](Instant t) {
    return kMarginLeft +
           plot_w * static_cast<double>((t - from).count()) / span_ns;
  };
  const int lanes = static_cast<int>(tl.tasks.size());
  const int height =
      kMarginTop + lanes * opts.lane_height_px + kMarginBottom;

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << opts.width_px << "\" height=\"" << height << "\" viewBox=\"0 0 "
      << opts.width_px << ' ' << height << "\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  // Time grid: ten divisions.
  if (opts.show_grid) {
    for (int i = 0; i <= 10; ++i) {
      const double x = kMarginLeft + plot_w * i / 10.0;
      svg << "<line x1=\"" << fmt(x) << "\" y1=\"" << kMarginTop
          << "\" x2=\"" << fmt(x) << "\" y2=\""
          << kMarginTop + lanes * opts.lane_height_px
          << "\" stroke=\"#dddddd\" stroke-width=\"1\"/>\n";
      const Instant t = from + (to - from) * i / 10;
      svg << "<text x=\"" << fmt(x) << "\" y=\"" << height - 8
          << "\" font-size=\"11\" text-anchor=\"middle\" fill=\"#555\">"
          << to_string(t) << "</text>\n";
    }
  }

  for (std::size_t lane = 0; lane < tl.tasks.size(); ++lane) {
    const TaskTimeline& task = tl.tasks[lane];
    const double y0 = kMarginTop + static_cast<double>(lane) *
                                       opts.lane_height_px;
    const double bar_y = y0 + opts.lane_height_px * 0.35;
    const double bar_h = opts.lane_height_px * 0.38;
    const char* color = lane_color(lane);

    svg << "<text x=\"8\" y=\"" << fmt(y0 + opts.lane_height_px * 0.62)
        << "\" font-size=\"13\" fill=\"#222\">" << task.name << "</text>\n";

    for (const JobRecord& job : task.jobs) {
      // Execution rectangles.
      for (const ExecutionSpan& s : job.spans) {
        const Instant b = std::max(s.begin, from);
        const Instant e = std::min(s.end, to);
        if (b >= e) continue;
        svg << "<rect x=\"" << fmt(x_of(b)) << "\" y=\"" << fmt(bar_y)
            << "\" width=\"" << fmt(x_of(e) - x_of(b)) << "\" height=\""
            << fmt(bar_h) << "\" fill=\"" << color
            << (job.missed ? "\" opacity=\"0.55" : "") << "\"/>\n";
      }
      // Release arrow (up) and deadline arrow (down).
      if (job.release >= from && job.release <= to) {
        const double x = x_of(job.release);
        svg << "<path d=\"M" << fmt(x) << ' ' << fmt(bar_y) << " l-4 -9 l8 0 z\" fill=\"#333\"/>\n";
      }
      if (job.deadline >= from && job.deadline <= to) {
        const double x = x_of(job.deadline);
        svg << "<path d=\"M" << fmt(x) << ' ' << fmt(bar_y + bar_h)
            << " l-4 9 l8 0 z\" fill=\""
            << (job.missed ? "#cc0000" : "#333") << "\"/>\n";
      }
      // Stop cross.
      if (job.aborted_at && *job.aborted_at >= from &&
          *job.aborted_at <= to) {
        const double x = x_of(*job.aborted_at);
        const double cy = bar_y + bar_h / 2;
        svg << "<path d=\"M" << fmt(x - 5) << ' ' << fmt(cy - 5) << " L"
            << fmt(x + 5) << ' ' << fmt(cy + 5) << " M" << fmt(x - 5) << ' '
            << fmt(cy + 5) << " L" << fmt(x + 5) << ' ' << fmt(cy - 5)
            << "\" stroke=\"#cc0000\" stroke-width=\"2\"/>\n";
      }
    }
    // Detector diamonds.
    for (const Instant t : task.detector_fires) {
      if (t < from || t > to) continue;
      const double x = x_of(t);
      const double cy = bar_y - 6;
      svg << "<path d=\"M" << fmt(x) << ' ' << fmt(cy - 4) << " l4 4 l-4 4 l-4 -4 z\" fill=\"#b8860b\"/>\n";
    }
  }

  svg << "</svg>\n";
  return svg.str();
}

}  // namespace rtft::trace
