#include "trace/stats.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace rtft::trace {

SystemStatsSummary compute_stats(const SystemTimeline& tl) {
  SystemStatsSummary out;
  out.window = tl.end - tl.start;
  for (const ExecutionSpan& s : tl.idle) out.idle_time += s.end - s.begin;
  if (out.window.is_positive()) {
    out.cpu_utilization =
        1.0 - static_cast<double>(out.idle_time.count()) /
                  static_cast<double>(out.window.count());
  }

  for (const TaskTimeline& task : tl.tasks) {
    TaskStatsSummary s;
    s.name = task.name;
    s.released = static_cast<std::int64_t>(task.jobs.size());
    s.detector_fires = static_cast<std::int64_t>(task.detector_fires.size());
    s.faults_detected =
        static_cast<std::int64_t>(task.fault_detections.size());
    s.stopped = task.stopped_at.has_value();
    Duration total_response;
    for (const JobRecord& j : task.jobs) {
      if (j.missed) s.missed++;
      if (j.aborted_at) s.aborted++;
      for (const ExecutionSpan& span : j.spans) {
        s.cpu_time += span.end - span.begin;
      }
      if (const auto r = j.response()) {
        if (s.completed == 0 || *r < s.min_response) s.min_response = *r;
        if (*r > s.max_response) s.max_response = *r;
        total_response += *r;
        s.completed++;
      }
    }
    if (s.completed > 0) s.mean_response = total_response / s.completed;
    out.total_misses += s.missed;
    out.tasks.push_back(std::move(s));
  }
  return out;
}

std::string SystemStatsSummary::table() const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"task", "released", "completed", "missed", "aborted",
                  "resp min", "resp mean", "resp max", "cpu", "state"});
  for (const TaskStatsSummary& t : tasks) {
    rows.push_back({t.name, std::to_string(t.released),
                    std::to_string(t.completed), std::to_string(t.missed),
                    std::to_string(t.aborted),
                    t.completed ? to_string(t.min_response) : "-",
                    t.completed ? to_string(t.mean_response) : "-",
                    t.completed ? to_string(t.max_response) : "-",
                    to_string(t.cpu_time),
                    t.stopped ? "stopped" : "alive"});
  }
  std::vector<std::size_t> widths(rows[0].size(), 0);
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) out << "  ";
      out << (c == 0 ? pad_right(rows[r][c], widths[c])
                     : pad_left(rows[r][c], widths[c]));
    }
    out << '\n';
  }
  out << "window " << to_string(window) << ", idle " << to_string(idle_time)
      << ", cpu " << format_fixed(cpu_utilization * 100.0, 1) << "%, misses "
      << total_misses << '\n';
  return out.str();
}

}  // namespace rtft::trace
