#include "trace/ascii_chart.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/assert.hpp"
#include "common/strings.hpp"

namespace rtft::trace {
namespace {

struct Glyphs {
  std::string release;
  std::string deadline;
  std::string both;      ///< release and deadline in the same column.
  std::string detector;
  std::string stop;
  std::string exec;
  std::string wait;
};

Glyphs glyphs_for(bool unicode) {
  if (unicode) return {"↑", "↓", "↕", "◆", "X", "█", "·"};
  return {"^", "v", "|", "*", "X", "#", "."};
}

/// A row of per-column cells, each one glyph (possibly multi-byte).
class Row {
 public:
  explicit Row(std::size_t width) : cells_(width, " ") {}
  void set(std::size_t col, const std::string& glyph) {
    if (col < cells_.size()) cells_[col] = glyph;
  }
  [[nodiscard]] const std::string& at(std::size_t col) const {
    return cells_[col];
  }
  [[nodiscard]] std::string str() const {
    std::string out;
    for (const std::string& c : cells_) out += c;
    return out;
  }

 private:
  std::vector<std::string> cells_;
};

}  // namespace

std::string render_ascii_chart(const SystemTimeline& tl,
                               const AsciiChartOptions& opts) {
  RTFT_EXPECTS(opts.width >= 10, "chart needs at least 10 columns");
  Instant from = opts.from;
  Instant to = opts.to;
  if (from == Instant() && to == Instant()) {
    from = tl.start;
    to = tl.end;
  }
  RTFT_EXPECTS(to > from, "chart window must be non-empty");
  const Glyphs g = glyphs_for(opts.unicode);
  const Duration span = to - from;

  const auto column_of = [&](Instant t) -> std::ptrdiff_t {
    if (t < from || t > to) return -1;
    const auto w = static_cast<std::int64_t>(opts.width);
    std::int64_t col = ((t - from).count() * w) / span.count();
    if (col >= w) col = w - 1;  // the window's end maps into the last cell
    return static_cast<std::ptrdiff_t>(col);
  };

  std::size_t label_width = 4;
  for (const TaskTimeline& task : tl.tasks) {
    label_width = std::max(label_width, task.name.size());
  }

  std::ostringstream out;
  out << std::string(label_width + 2, ' ') << '[' << to_string(from) << " .. "
      << to_string(to) << ", " << to_string(span / static_cast<std::int64_t>(
                                                opts.width))
      << "/col]\n";

  for (const TaskTimeline& task : tl.tasks) {
    Row markers(opts.width);
    Row exec(opts.width);

    for (const JobRecord& job : task.jobs) {
      // Waiting shade between release and retirement.
      Instant retired = to;
      if (job.end) retired = *job.end;
      if (job.aborted_at) retired = *job.aborted_at;
      const Instant wait_from = std::max(job.release, from);
      const Instant wait_to = std::min(retired, to);
      if (wait_from < wait_to) {
        const auto c0 = column_of(wait_from);
        const auto c1 = column_of(wait_to - Duration::ns(1));
        for (std::ptrdiff_t c = c0; c >= 0 && c <= c1; ++c) {
          exec.set(static_cast<std::size_t>(c), g.wait);
        }
      }
      // Execution spans overwrite the waiting shade.
      for (const ExecutionSpan& s : job.spans) {
        const Instant b = std::max(s.begin, from);
        const Instant e = std::min(s.end, to);
        if (b >= e) continue;
        const auto c0 = column_of(b);
        const auto c1 = column_of(e - Duration::ns(1));
        for (std::ptrdiff_t c = c0; c >= 0 && c <= c1; ++c) {
          exec.set(static_cast<std::size_t>(c), g.exec);
        }
      }
      // Markers.
      if (const auto c = column_of(job.release); c >= 0) {
        markers.set(static_cast<std::size_t>(c), g.release);
      }
      if (const auto c = column_of(job.deadline); c >= 0) {
        const auto col = static_cast<std::size_t>(c);
        markers.set(col,
                    markers.at(col) == g.release ? g.both : g.deadline);
      }
      if (job.aborted_at) {
        if (const auto c = column_of(*job.aborted_at); c >= 0) {
          exec.set(static_cast<std::size_t>(c), g.stop);
        }
      }
    }
    for (const Instant t : task.detector_fires) {
      if (const auto c = column_of(t); c >= 0) {
        markers.set(static_cast<std::size_t>(c), g.detector);
      }
    }

    out << pad_right(task.name, label_width) << "  " << markers.str()
        << '\n';
    out << std::string(label_width, ' ') << "  " << exec.str() << '\n';
  }

  if (opts.legend) {
    out << std::string(label_width + 2, ' ') << g.release << " release  "
        << g.deadline << " deadline  " << g.detector << " detector  "
        << g.exec << " running  " << g.wait << " waiting  " << g.stop
        << " stopped\n";
  }
  return out.str();
}

}  // namespace rtft::trace
