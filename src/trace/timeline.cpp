#include "trace/timeline.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rtft::trace {

SystemTimeline build_timeline(const sched::TaskSet& ts,
                              const Recorder& recorder, Instant horizon) {
  SystemTimeline out;
  out.start = Instant::epoch();
  out.end = horizon;
  out.tasks.resize(ts.size());
  for (sched::TaskId i = 0; i < ts.size(); ++i) {
    out.tasks[i].task = static_cast<std::uint32_t>(i);
    out.tasks[i].name = ts[i].name;
  }

  // Per-task currently-open execution span.
  std::vector<std::optional<Instant>> open(ts.size());
  // Per-task currently-executing job index (for span attribution).
  std::vector<std::int64_t> running_job(ts.size(), -1);

  auto close_span = [&](std::size_t task, Instant at) {
    if (!open[task]) return;
    TaskTimeline& tl = out.tasks[task];
    const std::int64_t job = running_job[task];
    RTFT_ASSERT(job >= 0 &&
                    static_cast<std::size_t>(job) < tl.jobs.size(),
                "span closed for unknown job");
    if (at > *open[task]) {
      tl.jobs[static_cast<std::size_t>(job)].spans.push_back(
          ExecutionSpan{*open[task], at});
    }
    open[task] = std::nullopt;
    running_job[task] = -1;
  };

  for (const TraceEvent& e : recorder.events()) {
    if (e.task == kNoTask) continue;
    RTFT_EXPECTS(e.task < ts.size(), "event references unknown task");
    const auto t = static_cast<std::size_t>(e.task);
    TaskTimeline& tl = out.tasks[t];
    switch (e.kind) {
      case EventKind::kJobRelease: {
        JobRecord job;
        job.index = e.job;
        job.release = e.time;
        job.deadline = e.time + ts[t].deadline;
        RTFT_ASSERT(static_cast<std::size_t>(e.job) == tl.jobs.size(),
                    "releases must arrive in order");
        tl.jobs.push_back(std::move(job));
        break;
      }
      case EventKind::kJobStart:
      case EventKind::kJobResumed:
        open[t] = e.time;
        running_job[t] = e.job;
        break;
      case EventKind::kJobPreempted:
        close_span(t, e.time);
        break;
      case EventKind::kJobEnd:
        close_span(t, e.time);
        tl.jobs[static_cast<std::size_t>(e.job)].end = e.time;
        break;
      case EventKind::kJobAborted:
        close_span(t, e.time);
        tl.jobs[static_cast<std::size_t>(e.job)].aborted_at = e.time;
        break;
      case EventKind::kDeadlineMiss:
        tl.jobs[static_cast<std::size_t>(e.job)].missed = true;
        break;
      case EventKind::kTaskStopped:
        tl.stopped_at = e.time;
        break;
      case EventKind::kDetectorFire:
        tl.detector_fires.push_back(e.time);
        break;
      case EventKind::kFaultDetected:
        tl.fault_detections.push_back(e.time);
        break;
      default:
        break;
    }
  }
  // Close any span still open at the horizon.
  for (std::size_t t = 0; t < ts.size(); ++t) close_span(t, horizon);

  // Idle = complement of the union of all execution spans.
  std::vector<ExecutionSpan> all;
  for (const TaskTimeline& tl : out.tasks) {
    for (const JobRecord& j : tl.jobs) {
      all.insert(all.end(), j.spans.begin(), j.spans.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const ExecutionSpan& a, const ExecutionSpan& b) {
              return a.begin < b.begin;
            });
  Instant cursor = out.start;
  for (const ExecutionSpan& s : all) {
    if (s.begin > cursor) out.idle.push_back(ExecutionSpan{cursor, s.begin});
    cursor = std::max(cursor, s.end);
  }
  if (cursor < horizon) out.idle.push_back(ExecutionSpan{cursor, horizon});
  return out;
}

}  // namespace rtft::trace
