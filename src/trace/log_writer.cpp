#include "trace/log_writer.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"
#include "common/strings.hpp"

namespace rtft::trace {
namespace {

std::string task_name(const sched::TaskSet& ts, std::uint32_t task) {
  if (task == kNoTask) return "-";
  RTFT_EXPECTS(task < ts.size(), "event references unknown task");
  return ts[task].name;
}

}  // namespace

void write_text_log(const Recorder& recorder, const sched::TaskSet& ts,
                    std::ostream& out) {
  for (const TraceEvent& e : recorder.events()) {
    out << pad_left(to_string(e.time), 12) << "  "
        << pad_right(std::string(to_string(e.kind)), 16) << " task="
        << pad_right(task_name(ts, e.task), 10);
    if (e.job != kNoJob) out << " job=" << e.job;
    if (e.detail != 0) out << " detail=" << e.detail;
    out << '\n';
  }
}

void write_csv(const Recorder& recorder, const sched::TaskSet& ts,
               std::ostream& out) {
  out << "time_ns,kind,task,job,detail\n";
  for (const TraceEvent& e : recorder.events()) {
    out << e.time.count() << ',' << to_string(e.kind) << ','
        << task_name(ts, e.task) << ',' << e.job << ',' << e.detail << '\n';
  }
}

void write_json(const Recorder& recorder, const sched::TaskSet& ts,
                std::ostream& out) {
  out << "[\n";
  bool first = true;
  for (const TraceEvent& e : recorder.events()) {
    if (!first) out << ",\n";
    first = false;
    out << "  {\"time_ns\": " << e.time.count() << ", \"kind\": \""
        << to_string(e.kind) << "\", \"task\": \"" << task_name(ts, e.task)
        << "\", \"job\": " << e.job << ", \"detail\": " << e.detail << '}';
  }
  out << "\n]\n";
}

std::string text_log_string(const Recorder& recorder,
                            const sched::TaskSet& ts) {
  std::ostringstream out;
  write_text_log(recorder, ts, out);
  return out.str();
}

std::string csv_string(const Recorder& recorder, const sched::TaskSet& ts) {
  std::ostringstream out;
  write_csv(recorder, ts, out);
  return out.str();
}

std::string json_string(const Recorder& recorder, const sched::TaskSet& ts) {
  std::ostringstream out;
  write_json(recorder, ts, out);
  return out.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  RTFT_EXPECTS(out.good(), "cannot open '" + path + "' for writing");
  out << content;
  RTFT_EXPECTS(out.good(), "write to '" + path + "' failed");
}

}  // namespace rtft::trace
