#include "trace/sink.hpp"

namespace rtft::trace {

NullSink& NullSink::instance() {
  static NullSink sink;
  return sink;
}

void CountingSink::record(const TraceEvent& event) {
  kind_totals_[static_cast<std::size_t>(event.kind)]++;
  if (event.task == kNoTask) return;
  const auto task = static_cast<std::size_t>(event.task);
  if (task >= tasks_.size()) tasks_.resize(task + 1);
  TaskCounters& c = tasks_[task];
  switch (event.kind) {
    case EventKind::kJobRelease: c.released++; break;
    case EventKind::kJobStart: c.started++; break;
    case EventKind::kJobEnd: {
      c.completed++;
      const Duration response = Duration::ns(event.detail);
      c.last_response = response;
      if (response > c.max_response) c.max_response = response;
      break;
    }
    case EventKind::kDeadlineMiss: c.missed++; break;
    case EventKind::kJobAborted: c.aborted++; break;
    case EventKind::kJobPreempted: c.preemptions++; break;
    case EventKind::kDetectorFire: c.detector_fires++; break;
    case EventKind::kFaultDetected: c.faults_detected++; break;
    case EventKind::kTaskStopped: c.stopped = true; break;
    default: break;  // resumed/timers/idle/etc. carry no counter.
  }
}

void CountingSink::reset() {
  tasks_.clear();
  for (std::int64_t& n : kind_totals_) n = 0;
}

const TaskCounters& CountingSink::counters(std::size_t task) const {
  static const TaskCounters kZero{};
  return task < tasks_.size() ? tasks_[task] : kZero;
}

}  // namespace rtft::trace
