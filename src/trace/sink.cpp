#include "trace/sink.hpp"

#include <algorithm>

namespace rtft::trace {

NullSink& NullSink::instance() {
  static NullSink sink;
  return sink;
}

void CounterBank::merge(const CounterBank& delta) {
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    kind_totals_[k] += delta.kind_totals_[k];
  }
  if (delta.tasks_.size() > tasks_.size()) tasks_.resize(delta.tasks_.size());
  for (std::size_t i = 0; i < delta.tasks_.size(); ++i) {
    const TaskCounters& d = delta.tasks_[i];
    TaskCounters& c = tasks_[i];
    c.released += d.released;
    c.started += d.started;
    c.completed += d.completed;
    c.missed += d.missed;
    c.aborted += d.aborted;
    c.preemptions += d.preemptions;
    c.detector_fires += d.detector_fires;
    c.faults_detected += d.faults_detected;
    c.stopped = c.stopped || d.stopped;
    c.max_response = std::max(c.max_response, d.max_response);
    if (d.completed > 0) c.last_response = d.last_response;
  }
}

void CounterBank::clear() {
  tasks_.clear();
  for (std::int64_t& n : kind_totals_) n = 0;
}

const TaskCounters& CounterBank::counters(std::size_t task) const {
  static const TaskCounters kZero{};
  return task < tasks_.size() ? tasks_[task] : kZero;
}

}  // namespace rtft::trace
