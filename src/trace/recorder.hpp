// In-memory trace recorder (paper §5: StringBuffer-buffered measurements,
// written out only after the run) — the full-fidelity trace::Sink.
#pragma once

#include <span>
#include <vector>

#include "trace/sink.hpp"

namespace rtft::trace {

/// Append-only event buffer. Preallocates so that recording during a
/// simulated (or wall-clock) run performs no I/O and, until the reserve
/// is exhausted, no allocation.
class Recorder final : public Sink {
 public:
  /// `reserve` — number of events to preallocate.
  explicit Recorder(std::size_t reserve = 1 << 16);

  using Sink::record;
  void record(const TraceEvent& event) override;

  [[nodiscard]] std::span<const TraceEvent> events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Copies the events of one kind, in record order, into `out`; returns
  /// the iterator past the last element written. Filtering into a
  /// caller-owned container replaces the old vector-per-call interface:
  ///   std::vector<TraceEvent> ends;
  ///   rec.of_kind(EventKind::kJobEnd, std::back_inserter(ends));
  template <typename OutputIt>
  OutputIt of_kind(EventKind kind, OutputIt out) const {
    for (const TraceEvent& e : events_) {
      if (e.kind == kind) *out++ = e;
    }
    return out;
  }
  /// Copies the events of one task, in record order, into `out`.
  template <typename OutputIt>
  OutputIt of_task(std::uint32_t task, OutputIt out) const {
    for (const TraceEvent& e : events_) {
      if (e.task == task) *out++ = e;
    }
    return out;
  }
  /// Number of recorded events of one kind.
  [[nodiscard]] std::size_t count_of_kind(EventKind kind) const;
  /// Number of recorded events attached to one task.
  [[nodiscard]] std::size_t count_of_task(std::uint32_t task) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace rtft::trace
