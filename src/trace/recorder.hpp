// In-memory trace recorder (paper §5: StringBuffer-buffered measurements,
// written out only after the run).
#pragma once

#include <span>
#include <vector>

#include "trace/events.hpp"

namespace rtft::trace {

/// Append-only event buffer. Preallocates so that recording during a
/// simulated (or wall-clock) run performs no I/O and, until the reserve
/// is exhausted, no allocation.
class Recorder {
 public:
  /// `reserve` — number of events to preallocate.
  explicit Recorder(std::size_t reserve = 1 << 16);

  void record(TraceEvent event);

  /// Convenience: build + record.
  void record(Instant time, EventKind kind, std::uint32_t task = kNoTask,
              std::int64_t job = kNoJob, std::int64_t detail = 0);

  [[nodiscard]] std::span<const TraceEvent> events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Events of one kind, in record order.
  [[nodiscard]] std::vector<TraceEvent> of_kind(EventKind kind) const;
  /// Events of one task, in record order.
  [[nodiscard]] std::vector<TraceEvent> of_task(std::uint32_t task) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace rtft::trace
