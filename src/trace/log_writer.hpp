// Log/CSV/JSON serialization of a recorded run (paper §5: the buffered
// measurements are "written in a log file which can then be interpreted
// by our tool of time series chart").
#pragma once

#include <iosfwd>
#include <string>

#include "sched/task.hpp"
#include "trace/recorder.hpp"

namespace rtft::trace {

/// One line per event: "<date> <kind> task=<name> job=<j> detail=<d>".
void write_text_log(const Recorder& recorder, const sched::TaskSet& ts,
                    std::ostream& out);

/// CSV with header: time_ns,kind,task,job,detail.
void write_csv(const Recorder& recorder, const sched::TaskSet& ts,
               std::ostream& out);

/// JSON array of event objects.
void write_json(const Recorder& recorder, const sched::TaskSet& ts,
                std::ostream& out);

/// Convenience wrappers returning strings (used by tests and examples).
[[nodiscard]] std::string text_log_string(const Recorder& recorder,
                                          const sched::TaskSet& ts);
[[nodiscard]] std::string csv_string(const Recorder& recorder,
                                     const sched::TaskSet& ts);
[[nodiscard]] std::string json_string(const Recorder& recorder,
                                      const sched::TaskSet& ts);

/// Writes `content` to `path`, throwing ContractViolation on I/O failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace rtft::trace
