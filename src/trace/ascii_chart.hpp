// Text time-series chart in the style of the paper's Figures 3–7.
//
// Two lines per task: a marker line carrying the paper's glyphs —
// ↑ releases ("periods"), ↓ deadlines, ◆ detector releases, > stop
// thresholds are visible through the detector marks, X the stop — and an
// execution line showing when the task held the CPU (█), was released but
// waiting (·), or had nothing pending (blank).
#pragma once

#include <string>

#include "trace/timeline.hpp"

namespace rtft::trace {

struct AsciiChartOptions {
  /// Window to render; a default-constructed range means the whole run.
  Instant from;
  Instant to;
  /// Chart width in character columns.
  std::size_t width = 100;
  /// Unicode glyphs (↑↓◆█·) when true, pure ASCII (^v*#.) otherwise.
  bool unicode = false;
  /// Append the glyph legend.
  bool legend = true;
};

/// Renders the timeline as a deterministic text chart.
[[nodiscard]] std::string render_ascii_chart(const SystemTimeline& tl,
                                             const AsciiChartOptions& opts = {});

}  // namespace rtft::trace
