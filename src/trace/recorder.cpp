#include "trace/recorder.hpp"

namespace rtft::trace {

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kJobRelease: return "release";
    case EventKind::kJobStart: return "start";
    case EventKind::kJobPreempted: return "preempted";
    case EventKind::kJobResumed: return "resumed";
    case EventKind::kJobEnd: return "end";
    case EventKind::kJobAborted: return "aborted";
    case EventKind::kDeadlineMiss: return "deadline-miss";
    case EventKind::kTaskStopped: return "task-stopped";
    case EventKind::kStopRequested: return "stop-requested";
    case EventKind::kTimerFire: return "timer-fire";
    case EventKind::kDetectorFire: return "detector-fire";
    case EventKind::kFaultDetected: return "fault-detected";
    case EventKind::kOverrunInjected: return "overrun-injected";
    case EventKind::kIdleStart: return "idle-start";
    case EventKind::kIdleEnd: return "idle-end";
  }
  return "unknown";
}

Recorder::Recorder(std::size_t reserve) { events_.reserve(reserve); }

void Recorder::record(const TraceEvent& event) { events_.push_back(event); }

std::size_t Recorder::count_of_kind(EventKind kind) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::size_t Recorder::count_of_task(std::uint32_t task) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.task == task) ++n;
  }
  return n;
}

}  // namespace rtft::trace
