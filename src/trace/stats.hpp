// Run statistics computed from a reconstructed timeline.
#pragma once

#include <string>
#include <vector>

#include "trace/timeline.hpp"

namespace rtft::trace {

/// Aggregates over one task's completed/failed jobs.
struct TaskStatsSummary {
  std::string name;
  std::int64_t released = 0;
  std::int64_t completed = 0;
  std::int64_t missed = 0;
  std::int64_t aborted = 0;
  Duration min_response;            ///< over completed jobs; zero if none.
  Duration max_response;
  Duration mean_response;
  Duration cpu_time;                ///< total execution-span length.
  std::int64_t detector_fires = 0;
  std::int64_t faults_detected = 0;
  bool stopped = false;
};

/// Whole-run aggregates.
struct SystemStatsSummary {
  std::vector<TaskStatsSummary> tasks;  ///< TaskId order.
  Duration window;                      ///< end - start.
  Duration idle_time;
  double cpu_utilization = 0.0;         ///< busy / window.
  std::int64_t total_misses = 0;

  /// Aligned text table of the per-task rows.
  [[nodiscard]] std::string table() const;
};

[[nodiscard]] SystemStatsSummary compute_stats(const SystemTimeline& tl);

}  // namespace rtft::trace
