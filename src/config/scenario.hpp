// Scenario files — the paper's measurement tooling (§5) includes a parser
// for "a file which describes the tasks in the system" that "builds and
// runs the tasks automatically". This module is that tool: a small INI
// dialect describing the task set, the treatment policy, the engine knobs
// and the injected faults.
//
//   # Figure 5 of the paper
//   [system]
//   policy = instant-stop            # see core::TreatmentPolicy names
//   horizon = 2000ms
//   quantizer = 10ms nearest         # resolution + none|nearest|up|down
//   stop-mode = task                 # task | job
//
//   [task tau1]
//   priority = 20
//   cost = 29ms
//   period = 200ms
//   deadline = 70ms
//   offset = 0ms                     # optional, default 0
//
//   [fault]                         # repeatable
//   task = tau1
//   job = 5
//   overrun = 40ms                   # negative = cost under-run
//
// Durations are written as a decimal number with a mandatory unit
// (ns, us, ms, s); "0" alone is accepted.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "core/ft_system.hpp"

namespace rtft::cfg {

/// Parse failure with file/line context in what().
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string_view file, int line, std::string_view message);
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// A parsed scenario: everything FaultTolerantSystem needs.
struct Scenario {
  core::FtSystemConfig config;
  core::FaultPlan faults;
};

/// Parses scenario text. Throws ParseError on malformed input and
/// ContractViolation on semantically invalid values (e.g. zero periods).
[[nodiscard]] Scenario parse_scenario(std::string_view text,
                                      std::string_view filename = "<string>");

/// Loads and parses a scenario file.
[[nodiscard]] Scenario load_scenario(const std::string& path);

/// Canonical text for a scenario; parse_scenario(write_scenario(s)) is an
/// identity on the represented data.
[[nodiscard]] std::string write_scenario(const Scenario& scenario);

/// Parses "<decimal><unit>" (unit in ns/us/ms/s; bare "0" accepted).
/// Returns false on malformed input.
[[nodiscard]] bool parse_duration(std::string_view text, Duration& out);

/// Canonical rendering used by write_scenario.
[[nodiscard]] std::string duration_to_config_string(Duration d);

}  // namespace rtft::cfg
