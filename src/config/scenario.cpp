#include "config/scenario.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "common/strings.hpp"

namespace rtft::cfg {
namespace {

struct Cursor {
  std::string_view file;
  int line = 0;
};

[[noreturn]] void fail(const Cursor& cur, std::string_view message) {
  throw ParseError(cur.file, cur.line, message);
}

Duration require_duration(const Cursor& cur, std::string_view key,
                          std::string_view value) {
  Duration d;
  if (!parse_duration(value, d)) {
    fail(cur, std::string(key) + ": cannot parse duration '" +
                  std::string(value) + "' (expected <number><ns|us|ms|s>)");
  }
  return d;
}

std::int64_t require_int(const Cursor& cur, std::string_view key,
                         std::string_view value) {
  std::int64_t v = 0;
  if (!parse_int64(value, v)) {
    fail(cur, std::string(key) + ": cannot parse integer '" +
                  std::string(value) + "'");
  }
  return v;
}

rt::Rounding rounding_from(const Cursor& cur, std::string_view word) {
  if (word == "none") return rt::Rounding::kNone;
  if (word == "nearest") return rt::Rounding::kNearest;
  if (word == "up") return rt::Rounding::kUp;
  if (word == "down") return rt::Rounding::kDown;
  fail(cur, "unknown rounding mode '" + std::string(word) +
                "' (expected none|nearest|up|down)");
}

std::string_view rounding_name(rt::Rounding mode) {
  switch (mode) {
    case rt::Rounding::kNone: return "none";
    case rt::Rounding::kNearest: return "nearest";
    case rt::Rounding::kUp: return "up";
    case rt::Rounding::kDown: return "down";
  }
  return "none";
}

/// Partially-built [task ...] section.
struct PendingTask {
  sched::TaskParams params;
  bool has_cost = false;
  bool has_period = false;
  bool has_deadline = false;
  bool has_priority = false;
  int declared_line = 0;
};

/// Partially-built [fault] section.
struct PendingFault {
  std::string task;
  std::int64_t job = -1;
  Duration overrun;
  bool has_overrun = false;
  int declared_line = 0;
};

}  // namespace

ParseError::ParseError(std::string_view file, int line,
                       std::string_view message)
    : std::runtime_error(std::string(file) + ":" + std::to_string(line) +
                         ": " + std::string(message)),
      line_(line) {}

bool parse_duration(std::string_view text, Duration& out) {
  const std::string_view s = trim(text);
  if (s.empty()) return false;
  if (s == "0") {
    out = Duration::zero();
    return true;
  }
  // Split numeric prefix from unit suffix.
  std::size_t unit_start = s.size();
  while (unit_start > 0 &&
         std::isalpha(static_cast<unsigned char>(s[unit_start - 1]))) {
    --unit_start;
  }
  const std::string_view number = s.substr(0, unit_start);
  const std::string_view unit = s.substr(unit_start);
  if (number != trim(number)) return false;  // no space before the unit
  double value = 0.0;
  if (!parse_double(number, value)) return false;
  double scale = 0.0;
  if (unit == "ns") {
    scale = 1.0;
  } else if (unit == "us") {
    scale = 1e3;
  } else if (unit == "ms") {
    scale = 1e6;
  } else if (unit == "s") {
    scale = 1e9;
  } else {
    return false;
  }
  out = Duration::ns(static_cast<std::int64_t>(std::llround(value * scale)));
  return true;
}

std::string duration_to_config_string(Duration d) {
  const std::int64_t ns = d.count();
  if (ns == 0) return "0";
  if (ns % 1'000'000'000 == 0) return std::to_string(ns / 1'000'000'000) + "s";
  if (ns % 1'000'000 == 0) return std::to_string(ns / 1'000'000) + "ms";
  if (ns % 1'000 == 0) return std::to_string(ns / 1'000) + "us";
  return std::to_string(ns) + "ns";
}

Scenario parse_scenario(std::string_view text, std::string_view filename) {
  Scenario scenario;
  Cursor cur{filename, 0};

  enum class Section { kNone, kSystem, kTask, kFault };
  Section section = Section::kNone;
  PendingTask task;
  PendingFault fault;

  const auto flush_task = [&] {
    if (section != Section::kTask) return;
    Cursor at{filename, task.declared_line};
    if (!task.has_priority) fail(at, "task '" + task.params.name + "': missing priority");
    if (!task.has_cost) fail(at, "task '" + task.params.name + "': missing cost");
    if (!task.has_period) fail(at, "task '" + task.params.name + "': missing period");
    if (!task.has_deadline) {
      task.params.deadline = task.params.period;  // implicit deadline
    }
    scenario.config.tasks.add(task.params);
  };
  const auto flush_fault = [&] {
    if (section != Section::kFault) return;
    Cursor at{filename, fault.declared_line};
    if (fault.task.empty()) fail(at, "fault: missing task");
    if (fault.job < 0) fail(at, "fault: missing job");
    if (!fault.has_overrun) fail(at, "fault: missing overrun");
    scenario.faults.add_overrun(fault.task, fault.job, fault.overrun);
  };
  const auto flush = [&] {
    flush_task();
    flush_fault();
  };

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view raw = text.substr(pos, eol - pos);
    pos = eol + 1;
    cur.line++;
    // Strip comments and whitespace.
    if (const std::size_t hash = raw.find('#'); hash != std::string_view::npos) {
      raw = raw.substr(0, hash);
    }
    const std::string_view line = trim(raw);
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }

    if (line.front() == '[') {
      if (line.back() != ']') fail(cur, "unterminated section header");
      flush();
      const std::string_view header = trim(line.substr(1, line.size() - 2));
      if (header == "system") {
        section = Section::kSystem;
      } else if (header == "fault") {
        section = Section::kFault;
        fault = PendingFault{};
        fault.declared_line = cur.line;
      } else if (header.substr(0, 5) == "task " ||
                 header.substr(0, 5) == "task\t") {
        section = Section::kTask;
        task = PendingTask{};
        task.declared_line = cur.line;
        task.params.name = std::string(trim(header.substr(5)));
        if (task.params.name.empty()) fail(cur, "task section needs a name");
      } else {
        fail(cur, "unknown section '" + std::string(header) + "'");
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail(cur, "expected 'key = value', got '" + std::string(line) + "'");
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) fail(cur, "empty key or value");

    switch (section) {
      case Section::kNone:
        fail(cur, "'" + std::string(key) + "' outside any section");
      case Section::kSystem: {
        auto& cfg = scenario.config;
        if (key == "policy") {
          try {
            cfg.policy = core::treatment_policy_from_string(value);
          } catch (const ContractViolation&) {
            fail(cur, "unknown policy '" + std::string(value) + "'");
          }
        } else if (key == "horizon") {
          cfg.horizon = require_duration(cur, key, value);
        } else if (key == "quantizer") {
          // "<resolution> <mode>"
          const std::size_t space = value.find(' ');
          if (space == std::string_view::npos) {
            fail(cur, "quantizer: expected '<resolution> <mode>'");
          }
          cfg.detector.quantizer.resolution =
              require_duration(cur, key, trim(value.substr(0, space)));
          cfg.detector.quantizer.mode =
              rounding_from(cur, trim(value.substr(space + 1)));
        } else if (key == "detector-fire-cost") {
          cfg.detector.fire_cost = require_duration(cur, key, value);
        } else if (key == "stop-mode") {
          if (value == "task") {
            cfg.stop_mode = rt::StopMode::kTask;
          } else if (value == "job") {
            cfg.stop_mode = rt::StopMode::kJob;
          } else {
            fail(cur, "stop-mode: expected task|job");
          }
        } else if (key == "stop-poll-latency") {
          cfg.stop_poll_latency = require_duration(cur, key, value);
        } else if (key == "context-switch-cost") {
          cfg.context_switch_cost = require_duration(cur, key, value);
        } else if (key == "allowance-granularity") {
          cfg.allowance.granularity = require_duration(cur, key, value);
        } else if (key == "run-infeasible") {
          if (value == "true") {
            cfg.run_infeasible = true;
          } else if (value == "false") {
            cfg.run_infeasible = false;
          } else {
            fail(cur, "run-infeasible: expected true|false");
          }
        } else {
          fail(cur, "unknown [system] key '" + std::string(key) + "'");
        }
        break;
      }
      case Section::kTask: {
        if (key == "priority") {
          task.params.priority =
              static_cast<sched::Priority>(require_int(cur, key, value));
          task.has_priority = true;
        } else if (key == "cost") {
          task.params.cost = require_duration(cur, key, value);
          task.has_cost = true;
        } else if (key == "period") {
          task.params.period = require_duration(cur, key, value);
          task.has_period = true;
        } else if (key == "deadline") {
          task.params.deadline = require_duration(cur, key, value);
          task.has_deadline = true;
        } else if (key == "offset") {
          task.params.offset = require_duration(cur, key, value);
        } else {
          fail(cur, "unknown [task] key '" + std::string(key) + "'");
        }
        break;
      }
      case Section::kFault: {
        if (key == "task") {
          fault.task = std::string(value);
        } else if (key == "job") {
          fault.job = require_int(cur, key, value);
        } else if (key == "overrun") {
          fault.overrun = require_duration(cur, key, value);
          fault.has_overrun = true;
        } else {
          fail(cur, "unknown [fault] key '" + std::string(key) + "'");
        }
        break;
      }
    }
    if (pos > text.size()) break;
  }
  flush();

  if (scenario.config.tasks.empty()) {
    fail(Cursor{filename, cur.line}, "scenario declares no tasks");
  }
  scenario.faults.validate_against(scenario.config.tasks);
  return scenario;
}

Scenario load_scenario(const std::string& path) {
  std::ifstream in(path);
  RTFT_EXPECTS(in.good(), "cannot open scenario file '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario(buffer.str(), path);
}

std::string write_scenario(const Scenario& scenario) {
  std::ostringstream out;
  const auto& cfg = scenario.config;
  out << "[system]\n";
  out << "policy = " << core::to_string(cfg.policy) << '\n';
  out << "horizon = " << duration_to_config_string(cfg.horizon) << '\n';
  out << "quantizer = "
      << duration_to_config_string(cfg.detector.quantizer.resolution) << ' '
      << rounding_name(cfg.detector.quantizer.mode) << '\n';
  if (!cfg.detector.fire_cost.is_zero()) {
    out << "detector-fire-cost = "
        << duration_to_config_string(cfg.detector.fire_cost) << '\n';
  }
  out << "stop-mode = "
      << (cfg.stop_mode == rt::StopMode::kTask ? "task" : "job") << '\n';
  if (!cfg.stop_poll_latency.is_zero()) {
    out << "stop-poll-latency = "
        << duration_to_config_string(cfg.stop_poll_latency) << '\n';
  }
  if (!cfg.context_switch_cost.is_zero()) {
    out << "context-switch-cost = "
        << duration_to_config_string(cfg.context_switch_cost) << '\n';
  }
  if (cfg.run_infeasible) out << "run-infeasible = true\n";

  for (const sched::TaskParams& t : cfg.tasks) {
    out << "\n[task " << t.name << "]\n";
    out << "priority = " << t.priority << '\n';
    out << "cost = " << duration_to_config_string(t.cost) << '\n';
    out << "period = " << duration_to_config_string(t.period) << '\n';
    out << "deadline = " << duration_to_config_string(t.deadline) << '\n';
    if (!t.offset.is_zero()) {
      out << "offset = " << duration_to_config_string(t.offset) << '\n';
    }
  }
  for (const core::FaultSpec& f : scenario.faults.faults()) {
    out << "\n[fault]\n";
    out << "task = " << f.task << '\n';
    out << "job = " << f.job_index << '\n';
    out << "overrun = " << duration_to_config_string(f.extra_cost) << '\n';
  }
  return out.str();
}

}  // namespace rtft::cfg
