// Bounded MPMC request queue with explicit backpressure.
//
// The admission service's first robustness rule is that memory is
// admission-controlled too: the queue has a hard capacity, try_push()
// refuses instead of growing, and the service turns that refusal into a
// reject-with-retry_after response. Blocking producers are deliberately
// not offered — a service thread that blocks on its own ingress queue
// under overload is how backpressure turns into deadlock.
//
// close() ends the stream: producers are refused from that point, but
// consumers keep draining whatever was accepted (pop() returns items
// until the queue is empty, then std::nullopt), so every accepted
// request is still answered during shutdown.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/assert.hpp"

namespace rtft::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    RTFT_EXPECTS(capacity > 0, "a bounded queue needs capacity >= 1");
  }

  /// Enqueues `item` unless the queue is full or closed; never blocks.
  /// Returns false (item untouched on the caller's side is consumed only
  /// on success — the && overload moves only when space exists).
  [[nodiscard]] bool try_push(T&& item) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > max_depth_) max_depth_ = items_.size();
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  /// Returns the item plus the depth *including* it at pop time (what the
  /// degradation controller keys on), or std::nullopt at end of stream.
  [[nodiscard]] std::optional<std::pair<T, std::size_t>> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained.
    const std::size_t depth = items_.size();
    T item = std::move(items_.front());
    items_.pop_front();
    return std::make_pair(std::move(item), depth);
  }

  /// Refuses future pushes and wakes every blocked consumer. Items
  /// already accepted remain poppable. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  [[nodiscard]] std::size_t depth() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// High-water mark since construction — the soak test's proof that the
  /// bound held.
  [[nodiscard]] std::size_t max_depth() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return max_depth_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  std::size_t max_depth_ = 0;
  bool closed_ = false;
};

}  // namespace rtft::serve
