// Request/response vocabulary of the admission service.
//
// The paper's artifact is one question — "can this task set, under this
// fault model, be admitted?" — asked once. A service answering it for
// millions of clients needs the answer wrapped in serving metadata: what
// happened to the request (answered, refused at the door, shed past its
// deadline, invalid, failed), which *tier* of analysis produced the
// verdict while the service was shedding load, and whether a cached
// verdict was reused. Every response carries all three, so a degraded
// answer is visibly degraded instead of silently weaker.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "sched/task.hpp"

namespace rtft::serve {

/// The degradation ladder, ordered strongest first. Under pressure the
/// service steps *down* the ladder (larger enum value = cheaper, weaker
/// analysis) and climbs back up when the queue clears.
enum class AnalysisTier : std::uint8_t {
  /// Exact response-time analysis plus a virtual-time engine run
  /// cross-checking the verdict — the full one-shot answer.
  kExact = 0,
  /// Exact response-time analysis only; the engine cross-check is shed.
  kRtaOnly = 1,
  /// Utilization bounds only (exact load test, then hyperbolic /
  /// Liu-Layland): constant-time, sufficient-only — may answer
  /// kInconclusive where the exact tiers would decide.
  kBound = 2,
};

[[nodiscard]] const char* to_cstring(AnalysisTier tier);

/// What happened to a request, independent of the admission verdict.
enum class ResponseStatus : std::uint8_t {
  kAnswered,       ///< analysis ran (or was cached); see verdict + tier.
  kRejectedFull,   ///< refused at the door: queue full. See retry_after.
  kShedDeadline,   ///< popped after its deadline; shed before any work.
  kInvalidRequest, ///< malformed task parameters; see detail.
  kWorkerError,    ///< analysis failed (worker exception); see detail.
  kShutdown,       ///< submitted after stop(); never enqueued.
};

[[nodiscard]] const char* to_cstring(ResponseStatus status);

/// The admission answer itself.
enum class AdmissionVerdict : std::uint8_t {
  kAdmit,         ///< provably feasible at the producing tier.
  kReject,        ///< provably infeasible at the producing tier.
  kInconclusive,  ///< the bound tier could not decide (U <= 1 but no
                  ///< sufficient bound passed). Exact tiers never
                  ///< return this.
};

[[nodiscard]] const char* to_cstring(AdmissionVerdict verdict);

/// One admission query. Task parameters travel raw (not as a validated
/// TaskSet): validation happens on a worker, where a poisoned request
/// becomes a kInvalidRequest response instead of a caller-side throw.
struct AdmissionRequest {
  /// Client correlation id, echoed in the response.
  std::uint64_t id = 0;
  std::vector<sched::TaskParams> tasks;
  /// Relative answer deadline, measured from submit(). A request still
  /// queued past it is shed without analysis. Zero = no deadline.
  Duration time_budget = Duration::zero();
};

struct AdmissionResponse {
  std::uint64_t id = 0;
  ResponseStatus status = ResponseStatus::kAnswered;
  AdmissionVerdict verdict = AdmissionVerdict::kInconclusive;
  /// The tier that produced the verdict (for a cache hit: the tier the
  /// cached entry was computed at, which is at least as strong as the
  /// tier active when it was served). Meaningful only when kAnswered.
  AnalysisTier tier = AnalysisTier::kExact;
  bool cache_hit = false;
  /// kExact only: the engine run agreed with the analysis (a sound RTA
  /// makes disagreement a library bug; the service counts it instead of
  /// asserting, and the soak test pins the count to zero).
  bool cross_checked = false;
  double utilization = 0.0;
  /// kRejectedFull only: a backpressure hint — roughly how long the
  /// current backlog needs to drain. Clients that retry sooner meet the
  /// same full queue.
  Duration retry_after = Duration::zero();
  /// kInvalidRequest / kWorkerError: one-line reason.
  std::string detail;
};

/// Deterministic fault-injection seam. Counters are keyed on the global
/// processed-request ordinal n (1-based): a fault with period k fires on
/// every request with n % k == 0. All zero (the default) injects
/// nothing; production builds pay only an integer compare per request.
struct ServiceFaultPlan {
  /// Worker throws std::runtime_error mid-analysis every k-th request.
  /// The worker must survive, answer kWorkerError, and keep serving.
  std::uint64_t worker_throw_every = 0;
  /// The service clock jumps forward by `clock_skip` every k-th request
  /// (models NTP steps / suspend-resume): queued deadlines expire en
  /// masse and must be shed, not answered late.
  std::uint64_t clock_skip_every = 0;
  Duration clock_skip = Duration::zero();
  /// The cache entry a lookup is about to return is bit-flipped every
  /// k-th request: the checksum must catch it, drop the entry, and
  /// recompute — never serve the corrupted verdict.
  std::uint64_t corrupt_cache_every = 0;
};

/// Monotonic service counters; snapshot via AdmissionService::metrics().
struct ServiceMetrics {
  std::uint64_t submitted = 0;       ///< submit() calls.
  std::uint64_t accepted = 0;        ///< enqueued (passed backpressure).
  std::uint64_t rejected_full = 0;   ///< refused: queue full.
  std::uint64_t rejected_shutdown = 0;  ///< refused: after stop().
  std::uint64_t shed_deadline = 0;   ///< expired in queue, shed unworked.
  std::uint64_t invalid = 0;         ///< poisoned requests caught.
  std::uint64_t worker_errors = 0;   ///< exceptions answered kWorkerError.
  std::uint64_t answered = 0;        ///< kAnswered responses.
  std::uint64_t answered_by_tier[3] = {0, 0, 0};  ///< index = AnalysisTier.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_corruption_detected = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t degrade_steps = 0;   ///< ladder steps down.
  std::uint64_t recover_steps = 0;   ///< ladder steps back up.
  std::uint64_t clock_skips = 0;     ///< injected clock jumps applied.
  std::uint64_t faults_injected = 0; ///< all ServiceFaultPlan firings.
  /// kExact runs where the engine disagreed with the analysis. RTA is a
  /// sound worst case, so anything nonzero is a library bug surfaced by
  /// serving traffic.
  std::uint64_t cross_check_disagreements = 0;
  /// kExact requests answered at kRtaOnly because the engine window
  /// would release more jobs than max_cross_check_jobs allows — the
  /// service's defense against a single pathological request (a 1 ns
  /// period next to a 1000 s one) starving every other client.
  std::uint64_t oversize_cross_check_skips = 0;
  std::size_t max_queue_depth = 0;   ///< high-water mark (<= capacity).
  AnalysisTier current_tier = AnalysisTier::kExact;

  /// Multi-line human-readable dump (the CLI driver's report).
  [[nodiscard]] std::string summary() const;
};

}  // namespace rtft::serve
