#include "serve/verdict_cache.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"

namespace rtft::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
}

std::uint64_t bits_of(double d) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(d));
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

}  // namespace

VerdictCache::VerdictCache(std::size_t capacity) : capacity_(capacity) {
  RTFT_EXPECTS(capacity > 0, "verdict cache needs capacity >= 1");
}

std::uint64_t VerdictCache::checksum_of(const sched::CanonicalTaskSet& key,
                                        const CachedVerdict& value) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, key.hash);
  fnv_mix(h, static_cast<std::uint64_t>(value.verdict));
  fnv_mix(h, static_cast<std::uint64_t>(value.tier));
  fnv_mix(h, static_cast<std::uint64_t>(value.tier_is_ceiling));
  fnv_mix(h, bits_of(value.utilization));
  return h;
}

VerdictCache::Lru::iterator VerdictCache::find_locked(
    const sched::CanonicalTaskSet& key) {
  const auto bucket = index_.find(key.hash);
  if (bucket == index_.end()) return lru_.end();
  for (const Lru::iterator it : bucket->second) {
    if (it->key == key) return it;
  }
  return lru_.end();
}

std::optional<CachedVerdict> VerdictCache::lookup(
    const sched::CanonicalTaskSet& key, AnalysisTier active) {
  const std::lock_guard<std::mutex> lock(mu_);
  const Lru::iterator it = find_locked(key);
  if (it == lru_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (checksum_of(it->key, it->value) != it->checksum) {
    // Corrupted: drop it and recompute — never serve a damaged verdict.
    ++stats_.corruption_detected;
    ++stats_.misses;
    auto& chain = index_[key.hash];
    chain.erase(std::find(chain.begin(), chain.end(), it));
    if (chain.empty()) index_.erase(key.hash);
    lru_.erase(it);
    return std::nullopt;
  }
  if (static_cast<std::uint8_t>(it->value.tier) >
          static_cast<std::uint8_t>(active) &&
      !it->value.tier_is_ceiling) {
    // Cached answer is weaker than what the service would compute right
    // now; recompute (and insert() will then upgrade the entry). A
    // ceiling entry is exempt: it already is the strongest answer this
    // key can get.
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it);  // bump to most-recently-used.
  ++stats_.hits;
  return it->value;
}

void VerdictCache::insert(const sched::CanonicalTaskSet& key,
                          const CachedVerdict& value) {
  const std::lock_guard<std::mutex> lock(mu_);
  const Lru::iterator it = find_locked(key);
  if (it != lru_.end()) {
    // Refresh, but never downgrade a stronger cached tier (corruption
    // already got erased on lookup, so what is here verified).
    if (static_cast<std::uint8_t>(value.tier) <=
        static_cast<std::uint8_t>(it->value.tier)) {
      const bool keep_ceiling =
          value.tier == it->value.tier && it->value.tier_is_ceiling;
      it->value = value;
      // The ceiling is a property of the key (its engine window is
      // oversize no matter who computes it): an equal-tier refresh must
      // not wash it away.
      if (keep_ceiling) it->value.tier_is_ceiling = true;
      it->checksum = checksum_of(it->key, it->value);
    }
    lru_.splice(lru_.begin(), lru_, it);
    return;
  }
  if (lru_.size() >= capacity_) {
    const Lru::iterator victim = std::prev(lru_.end());
    auto& chain = index_[victim->key.hash];
    chain.erase(std::find(chain.begin(), chain.end(), victim));
    if (chain.empty()) index_.erase(victim->key.hash);
    lru_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(Entry{key, value, checksum_of(key, value)});
  index_[key.hash].push_back(lru_.begin());
}

bool VerdictCache::corrupt(const sched::CanonicalTaskSet& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const Lru::iterator it = find_locked(key);
  if (it == lru_.end()) return false;
  it->value.utilization =
      it->value.utilization == 0.0 ? 1.0 : -it->value.utilization;
  it->value.verdict = it->value.verdict == AdmissionVerdict::kAdmit
                          ? AdmissionVerdict::kReject
                          : AdmissionVerdict::kAdmit;
  return true;
}

std::size_t VerdictCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

VerdictCacheStats VerdictCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace rtft::serve
