#include "serve/admission.hpp"

#include <sstream>

namespace rtft::serve {

const char* to_cstring(AnalysisTier tier) {
  switch (tier) {
    case AnalysisTier::kExact:
      return "exact";
    case AnalysisTier::kRtaOnly:
      return "rta-only";
    case AnalysisTier::kBound:
      return "bound";
  }
  return "?";
}

const char* to_cstring(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kAnswered:
      return "answered";
    case ResponseStatus::kRejectedFull:
      return "rejected-full";
    case ResponseStatus::kShedDeadline:
      return "shed-deadline";
    case ResponseStatus::kInvalidRequest:
      return "invalid-request";
    case ResponseStatus::kWorkerError:
      return "worker-error";
    case ResponseStatus::kShutdown:
      return "shutdown";
  }
  return "?";
}

const char* to_cstring(AdmissionVerdict verdict) {
  switch (verdict) {
    case AdmissionVerdict::kAdmit:
      return "admit";
    case AdmissionVerdict::kReject:
      return "reject";
    case AdmissionVerdict::kInconclusive:
      return "inconclusive";
  }
  return "?";
}

std::string ServiceMetrics::summary() const {
  std::ostringstream os;
  os << "admission service\n";
  os << "  submitted          " << submitted << "\n";
  os << "  accepted           " << accepted << "\n";
  os << "  rejected (full)    " << rejected_full << "\n";
  os << "  rejected (stop)    " << rejected_shutdown << "\n";
  os << "  shed (deadline)    " << shed_deadline << "\n";
  os << "  invalid            " << invalid << "\n";
  os << "  worker errors      " << worker_errors << "\n";
  os << "  answered           " << answered << " (exact " << answered_by_tier[0]
     << ", rta-only " << answered_by_tier[1] << ", bound "
     << answered_by_tier[2] << ")\n";
  os << "  cache              " << cache_hits << " hits, " << cache_misses
     << " misses, " << cache_evictions << " evictions, "
     << cache_corruption_detected << " corruptions caught\n";
  os << "  ladder             " << degrade_steps << " down, " << recover_steps
     << " up, now " << to_cstring(current_tier) << "\n";
  os << "  faults injected    " << faults_injected << " (" << clock_skips
     << " clock skips)\n";
  os << "  cross-check        " << cross_check_disagreements
     << " disagreements, " << oversize_cross_check_skips
     << " oversize skips\n";
  os << "  max queue depth    " << max_queue_depth << "\n";
  return os.str();
}

}  // namespace rtft::serve
