// Bounded LRU cache: canonical task set -> admission verdict.
//
// Millions of clients ask about a much smaller population of task mixes,
// so the service memoizes verdicts keyed by the *canonical* form of the
// task set (sched/canonical.hpp): renamed or reordered tasks hit the
// same entry. Robustness rules:
//
//   * Bounded: a hard entry capacity with strict LRU eviction — the
//     cache can never become the unbounded growth the queue forbids.
//   * Tier-aware: an entry remembers the tier that computed it and is
//     served only when at least as strong as the tier currently active,
//     so degraded-mode answers never masquerade as exact ones later.
//   * Self-validating: entries carry a checksum over their payload and
//     key; lookup verifies it and drops (counts, recomputes) corrupted
//     entries instead of serving them. The service's fault plan flips
//     entry bits on purpose to prove this path works.
//
// Internally synchronized: every method is safe to call from any worker
// thread concurrently.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "sched/canonical.hpp"
#include "serve/admission.hpp"

namespace rtft::serve {

/// One cached answer. `utilization` rides along so cache hits fill the
/// response without touching the task set again.
struct CachedVerdict {
  AdmissionVerdict verdict = AdmissionVerdict::kInconclusive;
  AnalysisTier tier = AnalysisTier::kExact;
  double utilization = 0.0;
  /// True when `tier` is the strongest answer the service can ever
  /// produce for this key (the kExact engine cross-check was refused as
  /// oversize). Lookup serves such an entry at any active tier: a
  /// stronger recompute is impossible, so demanding one would turn the
  /// entry into a permanent cache miss for exactly the pathological
  /// sets the cross-check cap exists to contain.
  bool tier_is_ceiling = false;
};

/// Counters a snapshot of which feeds ServiceMetrics.
struct VerdictCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t corruption_detected = 0;
  std::uint64_t evictions = 0;
};

class VerdictCache {
 public:
  explicit VerdictCache(std::size_t capacity);

  /// Returns the cached answer for `key` when present, uncorrupted, and
  /// computed at a tier at least as strong as `active` (numerically <=,
  /// kExact being strongest) — or marked tier_is_ceiling, meaning no
  /// stronger answer exists to recompute; bumps the entry to
  /// most-recently-used. Counts a miss otherwise; a corrupted entry is
  /// additionally counted and erased.
  [[nodiscard]] std::optional<CachedVerdict> lookup(
      const sched::CanonicalTaskSet& key, AnalysisTier active);

  /// Inserts or refreshes the entry. A weaker-tier value never
  /// overwrites a stronger cached one (a kBound answer arriving while a
  /// kExact one is cached would *lose* information).
  void insert(const sched::CanonicalTaskSet& key, const CachedVerdict& value);

  /// Fault-injection seam: bit-flips the stored payload of `key`'s entry
  /// (if present) without fixing the checksum, exactly what a stray
  /// write or decayed cell would do. Returns true when an entry was
  /// corrupted.
  bool corrupt(const sched::CanonicalTaskSet& key);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] VerdictCacheStats stats() const;

 private:
  struct Entry {
    sched::CanonicalTaskSet key;  ///< full key: hash collisions compare.
    CachedVerdict value;
    std::uint64_t checksum = 0;
  };
  using Lru = std::list<Entry>;

  [[nodiscard]] static std::uint64_t checksum_of(
      const sched::CanonicalTaskSet& key, const CachedVerdict& value);
  /// Finds the live iterator for `key`, comparing full keys within the
  /// hash bucket. Caller holds mu_.
  [[nodiscard]] Lru::iterator find_locked(const sched::CanonicalTaskSet& key);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  Lru lru_;  ///< front = most recently used.
  /// hash -> entries with that hash (usually one; collisions chain).
  std::unordered_map<std::uint64_t, std::vector<Lru::iterator>> index_;
  VerdictCacheStats stats_;
};

}  // namespace rtft::serve
