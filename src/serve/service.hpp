// The always-on admission service — the paper's one-shot admission test
// productionized into a long-lived server that survives overload.
//
// Request lifecycle:
//
//   submit() ──► bounded queue ──► worker pool ──► response future
//      │ full?                       │
//      └─► kRejectedFull +           ├─ expired? ─► kShedDeadline
//          retry_after               ├─ poisoned? ─► kInvalidRequest
//          (backpressure,            ├─ cache hit? ─► kAnswered (cached
//           never unbounded           │               tier tag)
//           growth)                   └─ analyze at the ladder tier:
//                                        kExact ─► kRtaOnly ─► kBound
//
// Robustness by construction, in the REL tradition of making the
// fault-tolerance provisions an explicit, testable structure rather than
// scattered ad hoc:
//
//   * Backpressure, not buffering: the queue is bounded; a full queue
//     refuses with a retry_after hint. Accepted requests are always
//     answered — including during shutdown.
//   * Shed before work: a request whose deadline passed while queued is
//     answered kShedDeadline without spending analysis on it.
//   * The degradation ladder: under queue-depth (or observed-latency)
//     pressure workers step down from exact RTA + engine cross-check to
//     RTA only to constant-time utilization bounds, every response
//     tagged with the tier that produced it, and step back up (with
//     hysteresis) when pressure clears. Degraded answers are weaker but
//     bounded — kInconclusive at worst — never wrong.
//   * Pooled engines: each worker reuses one rt::Engine through the
//     reset() path, so steady-state serving allocates nothing per
//     request on the engine side.
//   * Memoization: verdicts are cached by canonical task-set identity
//     (bounded LRU, checksum-validated), so repeated queries never
//     recompute.
//   * Faults are injectable (ServiceFaultPlan): worker exceptions,
//     clock skips and cache corruption can be injected deterministically
//     so the soak test *proves* the service degrades and recovers
//     instead of assuming it.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/engine.hpp"
#include "serve/admission.hpp"
#include "serve/bounded_queue.hpp"
#include "serve/verdict_cache.hpp"

namespace rtft::serve {

/// When the ladder steps. Thresholds are queue-fill fractions in (0, 1];
/// a tier degrades when fill reaches its threshold and recovers when
/// fill drops to threshold * recover_factor (hysteresis, so a fill
/// hovering at a threshold cannot make the tier flap every request).
struct DegradationPolicy {
  double degrade_rta_at = 0.50;    ///< fill >= this: shed the cross-check.
  double degrade_bound_at = 0.80;  ///< fill >= this: bounds only.
  double recover_factor = 0.5;     ///< recover below threshold * this.
  /// Secondary signal: EMA of per-request service time. Above this the
  /// service holds at least kRtaOnly even with a shallow queue (a few
  /// slow requests can starve the queue without ever filling it).
  /// Zero disables.
  Duration latency_degrade_at = Duration::zero();
};

struct ServiceOptions {
  std::size_t workers = 2;
  std::size_t queue_capacity = 64;
  std::size_t cache_capacity = 1024;
  /// Engine cross-check window, as a multiple of the set's largest
  /// period (same meaning as SweepOptions::horizon_periods).
  std::int64_t horizon_periods = 8;
  /// Refuse the engine cross-check (answer at kRtaOnly) when the window
  /// would release more jobs than this — one pathological request must
  /// not monopolize a worker.
  std::int64_t max_cross_check_jobs = 200'000;
  rt::EventQueueMode event_queue = rt::EventQueueMode::kTimingWheel;
  DegradationPolicy degradation;
  ServiceFaultPlan faults;
  /// Start the worker pool in the constructor. Tests pass false, preload
  /// the queue, then call start() — making queue-depth-driven ladder
  /// behaviour exactly reproducible.
  bool autostart = true;
};

class AdmissionService {
 public:
  explicit AdmissionService(ServiceOptions options);
  ~AdmissionService();  ///< stop()s.
  AdmissionService(const AdmissionService&) = delete;
  AdmissionService& operator=(const AdmissionService&) = delete;

  /// Launches the worker pool. No-op when already started.
  void start();

  /// Refuses new submissions, lets the workers drain and answer every
  /// already-accepted request, then joins the pool. Idempotent.
  void stop();

  /// Never blocks. The future always resolves: immediately for
  /// kRejectedFull / kShutdown, after a worker handles the request
  /// otherwise (also guaranteed during stop()).
  [[nodiscard]] std::future<AdmissionResponse> submit(AdmissionRequest request);

  /// Blocking convenience: submit + wait.
  [[nodiscard]] AdmissionResponse admit(AdmissionRequest request);

  [[nodiscard]] ServiceMetrics metrics() const;
  [[nodiscard]] AnalysisTier current_tier() const;
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }

 private:
  struct Pending {
    AdmissionRequest request;
    std::promise<AdmissionResponse> promise;
    std::int64_t deadline_ns = 0;  ///< service-clock date; 0 = none.
  };

  /// Per-worker pooled execution context (the PR 2 reset() path): one
  /// engine and one counting sink reused across every request the
  /// worker serves.
  struct WorkerContext {
    explicit WorkerContext(const ServiceOptions& opts);
    rt::Engine engine;
    trace::CountingSink counting;
  };

  /// Service clock: steady_clock nanoseconds plus the injected skew.
  [[nodiscard]] std::int64_t now_ns() const;
  void worker_loop();
  /// Answers one popped request (everything except promise delivery).
  [[nodiscard]] AdmissionResponse process(WorkerContext& ctx, Pending& item,
                                          AnalysisTier tier);
  /// Runs the tier's analysis on a validated set.
  [[nodiscard]] CachedVerdict compute(WorkerContext& ctx,
                                      const sched::TaskSet& ts,
                                      AnalysisTier tier, bool& cross_checked);
  /// Re-evaluates the ladder from the queue fill seen at pop time.
  [[nodiscard]] AnalysisTier update_tier(std::size_t depth_at_pop);
  void note_latency(Duration elapsed);
  [[nodiscard]] Duration estimate_retry_after() const;

  ServiceOptions opts_;
  BoundedQueue<Pending> queue_;
  VerdictCache cache_;
  std::vector<std::thread> pool_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::mutex lifecycle_mu_;  ///< serializes start()/stop().

  std::atomic<std::int64_t> clock_skew_ns_{0};
  std::atomic<std::uint64_t> processed_{0};  ///< fault-plan ordinal.

  /// Ladder state + latency EMA, under one small lock (touched once per
  /// request, never inside analysis).
  mutable std::mutex ctrl_mu_;
  bool rta_degraded_ = false;
  bool bound_degraded_ = false;
  bool latency_degraded_ = false;
  AnalysisTier tier_ = AnalysisTier::kExact;
  double ema_latency_ns_ = 0.0;

  // Monotonic counters (ServiceMetrics snapshot sources).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
  std::atomic<std::uint64_t> invalid_{0};
  std::atomic<std::uint64_t> worker_errors_{0};
  std::atomic<std::uint64_t> answered_{0};
  std::atomic<std::uint64_t> answered_by_tier_[3] = {{0}, {0}, {0}};
  std::atomic<std::uint64_t> degrade_steps_{0};
  std::atomic<std::uint64_t> recover_steps_{0};
  std::atomic<std::uint64_t> clock_skips_{0};
  std::atomic<std::uint64_t> faults_injected_{0};
  std::atomic<std::uint64_t> cross_check_disagreements_{0};
  std::atomic<std::uint64_t> oversize_cross_check_skips_{0};
};

}  // namespace rtft::serve
