#include "serve/service.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "common/assert.hpp"
#include "sched/canonical.hpp"
#include "sched/feasibility.hpp"
#include "sched/utilization.hpp"

namespace rtft::serve {

namespace {

rt::EngineOptions placeholder_engine_options() {
  rt::EngineOptions eopts;
  eopts.horizon = Instant::from_ns(1);  // re-armed before every cross-check.
  return eopts;
}

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The hyperbolic / Liu-Layland bounds are sufficient only for
/// rate-monotonic priorities with deadlines no tighter than periods;
/// applying them outside that shape would turn "degraded" into "wrong".
bool bounds_applicable(const sched::TaskSet& ts) {
  const auto& tasks = ts.tasks();
  for (const sched::TaskParams& t : tasks) {
    if (t.deadline < t.period) return false;
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    for (std::size_t j = 0; j < tasks.size(); ++j) {
      // Strictly RM-consistent: a strictly shorter period must have a
      // strictly higher priority. Equal priorities across different
      // periods fail too — the model (TaskSet::HP) makes equal-priority
      // tasks mutually interfering, so the short-period task suffers
      // interference RM never allows and the bounds stop being
      // sufficient.
      if (tasks[i].period < tasks[j].period &&
          tasks[i].priority <= tasks[j].priority) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Lifecycle.
// ---------------------------------------------------------------------------

AdmissionService::WorkerContext::WorkerContext(const ServiceOptions& opts)
    : engine(placeholder_engine_options()) {
  (void)opts;
  engine.reserve(32, 4 * 32 + 16);
}

AdmissionService::AdmissionService(ServiceOptions options)
    : opts_(options),
      queue_(options.queue_capacity),
      cache_(options.cache_capacity) {
  RTFT_EXPECTS(opts_.workers > 0, "admission service needs >= 1 worker");
  RTFT_EXPECTS(opts_.horizon_periods > 0,
               "cross-check horizon must cover >= 1 period");
  RTFT_EXPECTS(opts_.degradation.degrade_rta_at > 0.0 &&
                   opts_.degradation.degrade_bound_at >=
                       opts_.degradation.degrade_rta_at,
               "degradation thresholds must be ordered and positive");
  if (opts_.autostart) start();
}

AdmissionService::~AdmissionService() { stop(); }

void AdmissionService::start() {
  const std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_.load() || stopping_.load()) return;
  pool_.reserve(opts_.workers);
  for (std::size_t i = 0; i < opts_.workers; ++i) {
    pool_.emplace_back([this] { worker_loop(); });
  }
  started_.store(true);
}

void AdmissionService::stop() {
  const std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (stopping_.load()) return;
  stopping_.store(true);
  queue_.close();
  for (std::thread& t : pool_) t.join();
  pool_.clear();
  // Never-started services still owe answers on whatever was preloaded.
  while (auto popped = queue_.pop()) {
    AdmissionResponse resp;
    resp.id = popped->first.request.id;
    resp.status = ResponseStatus::kShutdown;
    resp.detail = "service stopped before a worker picked this up";
    rejected_shutdown_.fetch_add(1);
    popped->first.promise.set_value(std::move(resp));
  }
}

// ---------------------------------------------------------------------------
// Ingress.
// ---------------------------------------------------------------------------

std::int64_t AdmissionService::now_ns() const {
  return steady_ns() + clock_skew_ns_.load(std::memory_order_relaxed);
}

std::future<AdmissionResponse> AdmissionService::submit(
    AdmissionRequest request) {
  submitted_.fetch_add(1);
  Pending item;
  item.request = std::move(request);
  if (item.request.time_budget.is_positive()) {
    item.deadline_ns = now_ns() + item.request.time_budget.count();
  }
  std::future<AdmissionResponse> future = item.promise.get_future();
  if (stopping_.load()) {
    AdmissionResponse resp;
    resp.id = item.request.id;
    resp.status = ResponseStatus::kShutdown;
    resp.detail = "service is stopping";
    rejected_shutdown_.fetch_add(1);
    item.promise.set_value(std::move(resp));
    return future;
  }
  const std::uint64_t id = item.request.id;
  if (!queue_.try_push(std::move(item))) {
    // `item` was not consumed, so its promise is still ours to keep.
    AdmissionResponse resp;
    resp.id = id;
    if (queue_.closed()) {
      resp.status = ResponseStatus::kShutdown;
      resp.detail = "service is stopping";
      rejected_shutdown_.fetch_add(1);
    } else {
      resp.status = ResponseStatus::kRejectedFull;
      resp.retry_after = estimate_retry_after();
      rejected_full_.fetch_add(1);
    }
    item.promise.set_value(std::move(resp));
    return future;
  }
  accepted_.fetch_add(1);
  return future;
}

AdmissionResponse AdmissionService::admit(AdmissionRequest request) {
  return submit(std::move(request)).get();
}

Duration AdmissionService::estimate_retry_after() const {
  double ema;
  {
    const std::lock_guard<std::mutex> lock(ctrl_mu_);
    ema = ema_latency_ns_;
  }
  const double backlog = static_cast<double>(queue_.depth());
  const double drain_ns = backlog * ema / static_cast<double>(opts_.workers);
  const std::int64_t floor_ns = Duration::ms(1).count();
  const auto hint = static_cast<std::int64_t>(drain_ns);
  return Duration::ns(hint > floor_ns ? hint : floor_ns);
}

// ---------------------------------------------------------------------------
// The degradation ladder.
// ---------------------------------------------------------------------------

AnalysisTier AdmissionService::update_tier(std::size_t depth_at_pop) {
  const DegradationPolicy& p = opts_.degradation;
  const double fill = static_cast<double>(depth_at_pop) /
                      static_cast<double>(queue_.capacity());
  const std::lock_guard<std::mutex> lock(ctrl_mu_);
  // Each pressure flag latches at its threshold and releases only below
  // threshold * recover_factor — the hysteresis that keeps a fill
  // hovering at a boundary from flapping the tier on every request.
  if (fill >= p.degrade_rta_at) {
    rta_degraded_ = true;
  } else if (fill <= p.degrade_rta_at * p.recover_factor) {
    rta_degraded_ = false;
  }
  if (fill >= p.degrade_bound_at) {
    bound_degraded_ = true;
  } else if (fill <= p.degrade_bound_at * p.recover_factor) {
    bound_degraded_ = false;
  }
  if (p.latency_degrade_at.is_positive()) {
    const double threshold = static_cast<double>(p.latency_degrade_at.count());
    if (ema_latency_ns_ >= threshold) {
      latency_degraded_ = true;
    } else if (ema_latency_ns_ <= threshold * p.recover_factor) {
      latency_degraded_ = false;
    }
  }
  AnalysisTier next = AnalysisTier::kExact;
  if (bound_degraded_) {
    next = AnalysisTier::kBound;
  } else if (rta_degraded_ || latency_degraded_) {
    next = AnalysisTier::kRtaOnly;
  }
  if (next > tier_) degrade_steps_.fetch_add(1);
  if (next < tier_) recover_steps_.fetch_add(1);
  tier_ = next;
  return next;
}

void AdmissionService::note_latency(Duration elapsed) {
  const auto x = static_cast<double>(elapsed.count());
  const std::lock_guard<std::mutex> lock(ctrl_mu_);
  ema_latency_ns_ =
      ema_latency_ns_ == 0.0 ? x : 0.8 * ema_latency_ns_ + 0.2 * x;
}

// ---------------------------------------------------------------------------
// Workers.
// ---------------------------------------------------------------------------

void AdmissionService::worker_loop() {
  WorkerContext ctx(opts_);
  while (auto popped = queue_.pop()) {
    Pending& item = popped->first;
    const AnalysisTier tier = update_tier(popped->second);
    const std::int64_t t0 = steady_ns();
    AdmissionResponse resp;
    try {
      resp = process(ctx, item, tier);
    } catch (const std::exception& e) {
      resp = AdmissionResponse{};
      resp.id = item.request.id;
      resp.status = ResponseStatus::kWorkerError;
      resp.detail = e.what();
      worker_errors_.fetch_add(1);
    } catch (...) {
      // A non-std::exception throw escaping the thread entrypoint would
      // std::terminate() the whole service and abandon the promise.
      resp = AdmissionResponse{};
      resp.id = item.request.id;
      resp.status = ResponseStatus::kWorkerError;
      resp.detail = "analysis threw a non-standard exception";
      worker_errors_.fetch_add(1);
    }
    note_latency(Duration::ns(steady_ns() - t0));
    item.promise.set_value(std::move(resp));
  }
}

AdmissionResponse AdmissionService::process(WorkerContext& ctx, Pending& item,
                                            AnalysisTier tier) {
  AdmissionResponse resp;
  resp.id = item.request.id;

  const std::uint64_t n = processed_.fetch_add(1) + 1;
  const ServiceFaultPlan& faults = opts_.faults;
  if (faults.clock_skip_every != 0 && n % faults.clock_skip_every == 0) {
    clock_skew_ns_.fetch_add(faults.clock_skip.count());
    clock_skips_.fetch_add(1);
    faults_injected_.fetch_add(1);
  }

  if (item.deadline_ns != 0 && now_ns() > item.deadline_ns) {
    resp.status = ResponseStatus::kShedDeadline;
    resp.detail = "deadline passed while queued";
    shed_deadline_.fetch_add(1);
    return resp;
  }

  sched::TaskSet ts;
  try {
    RTFT_EXPECTS(!item.request.tasks.empty(),
                 "admission request carries no tasks");
    for (const sched::TaskParams& params : item.request.tasks) {
      ts.add(params);
    }
  } catch (const std::exception& e) {
    resp.status = ResponseStatus::kInvalidRequest;
    resp.detail = e.what();
    invalid_.fetch_add(1);
    return resp;
  }

  const sched::CanonicalTaskSet key = sched::canonicalize(ts);

  if (faults.corrupt_cache_every != 0 && n % faults.corrupt_cache_every == 0) {
    if (cache_.corrupt(key)) faults_injected_.fetch_add(1);
  }
  if (faults.worker_throw_every != 0 && n % faults.worker_throw_every == 0) {
    faults_injected_.fetch_add(1);
    throw std::runtime_error("injected worker fault");
  }

  if (std::optional<CachedVerdict> hit = cache_.lookup(key, tier)) {
    resp.status = ResponseStatus::kAnswered;
    resp.verdict = hit->verdict;
    resp.tier = hit->tier;
    resp.cache_hit = true;
    resp.utilization = hit->utilization;
    answered_.fetch_add(1);
    answered_by_tier_[static_cast<std::size_t>(hit->tier)].fetch_add(1);
    return resp;
  }

  bool cross_checked = false;
  const CachedVerdict computed = compute(ctx, ts, tier, cross_checked);
  cache_.insert(key, computed);

  resp.status = ResponseStatus::kAnswered;
  resp.verdict = computed.verdict;
  resp.tier = computed.tier;
  resp.cross_checked = cross_checked;
  resp.utilization = computed.utilization;
  answered_.fetch_add(1);
  answered_by_tier_[static_cast<std::size_t>(computed.tier)].fetch_add(1);
  return resp;
}

CachedVerdict AdmissionService::compute(WorkerContext& ctx,
                                        const sched::TaskSet& ts,
                                        AnalysisTier tier,
                                        bool& cross_checked) {
  CachedVerdict out;
  out.tier = tier;
  out.utilization = ts.utilization();

  if (tier == AnalysisTier::kBound) {
    // Constant-time floor of the ladder: the exact load test decides
    // U > 1; below that only the sufficient bounds may admit, and only
    // on the task shapes they are valid for.
    const sched::LoadVerdict load = sched::load_test(ts);
    if (load == sched::LoadVerdict::kAboveOne) {
      out.verdict = AdmissionVerdict::kReject;
    } else if (bounds_applicable(ts) && (sched::passes_hyperbolic(ts) ||
                                         sched::passes_liu_layland(ts))) {
      out.verdict = AdmissionVerdict::kAdmit;
    } else {
      out.verdict = AdmissionVerdict::kInconclusive;
    }
    return out;
  }

  const sched::FeasibilityReport report = sched::analyze(ts);
  out.utilization = report.utilization;
  out.verdict = report.feasible ? AdmissionVerdict::kAdmit
                                : AdmissionVerdict::kReject;
  if (tier == AnalysisTier::kRtaOnly) return out;

  // kExact: replay the set through the virtual-time engine and compare.
  Duration max_period = Duration::zero();
  for (const sched::TaskParams& t : ts.tasks()) {
    if (t.period > max_period) max_period = t.period;
  }
  const Duration horizon = max_period * opts_.horizon_periods;
  std::int64_t jobs = 0;
  for (const sched::TaskParams& t : ts.tasks()) {
    jobs += (horizon.count() + t.period.count() - 1) / t.period.count();
    if (jobs > opts_.max_cross_check_jobs) break;
  }
  if (jobs > opts_.max_cross_check_jobs) {
    // A 1 ns period next to a 1000 s one must not monopolize a worker:
    // keep the analytic answer and tag it honestly as not cross-checked.
    // Mark the tier as this key's ceiling so exact-tier lookups still
    // hit the cache — recomputing would skip the cross-check again.
    out.tier = AnalysisTier::kRtaOnly;
    out.tier_is_ceiling = true;
    oversize_cross_check_skips_.fetch_add(1);
    return out;
  }

  rt::EngineOptions eopts;
  eopts.horizon = Instant::epoch() + horizon;
  eopts.event_queue = opts_.event_queue;
  eopts.sink_mode = trace::SinkMode::kStaticCounting;
  eopts.counting_sink = &ctx.counting;
  ctx.counting.reset();
  ctx.engine.reset(eopts);
  std::vector<rt::TaskHandle> handles;
  handles.reserve(ts.size());
  for (const sched::TaskParams& t : ts.tasks()) {
    // Zero the offsets: synchronous release is the critical instant the
    // analysis assumes; simulating a client's phasing instead would make
    // honest disagreements look like library bugs.
    sched::TaskParams aligned = t;
    aligned.offset = Duration::zero();
    handles.push_back(ctx.engine.add_task(aligned));
  }
  ctx.engine.run();
  std::int64_t missed = 0;
  for (const rt::TaskHandle h : handles) missed += ctx.engine.stats(h).missed;
  cross_checked = true;
  const bool engine_clean = missed == 0;
  if (engine_clean != report.feasible) {
    // RTA is a sound worst case, so this is a library bug surfaced by
    // traffic; count it loudly, answer from the analysis.
    cross_check_disagreements_.fetch_add(1);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Observation.
// ---------------------------------------------------------------------------

ServiceMetrics AdmissionService::metrics() const {
  ServiceMetrics m;
  m.submitted = submitted_.load();
  m.accepted = accepted_.load();
  m.rejected_full = rejected_full_.load();
  m.rejected_shutdown = rejected_shutdown_.load();
  m.shed_deadline = shed_deadline_.load();
  m.invalid = invalid_.load();
  m.worker_errors = worker_errors_.load();
  m.answered = answered_.load();
  for (std::size_t i = 0; i < 3; ++i) {
    m.answered_by_tier[i] = answered_by_tier_[i].load();
  }
  const VerdictCacheStats cache = cache_.stats();
  m.cache_hits = cache.hits;
  m.cache_misses = cache.misses;
  m.cache_corruption_detected = cache.corruption_detected;
  m.cache_evictions = cache.evictions;
  m.degrade_steps = degrade_steps_.load();
  m.recover_steps = recover_steps_.load();
  m.clock_skips = clock_skips_.load();
  m.faults_injected = faults_injected_.load();
  m.cross_check_disagreements = cross_check_disagreements_.load();
  m.oversize_cross_check_skips = oversize_cross_check_skips_.load();
  m.max_queue_depth = queue_.max_depth();
  m.current_tier = current_tier();
  return m;
}

AnalysisTier AdmissionService::current_tier() const {
  const std::lock_guard<std::mutex> lock(ctrl_mu_);
  return tier_;
}

}  // namespace rtft::serve
