#include "multicore/partition.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "sched/feasibility.hpp"

namespace rtft::multicore {
namespace {

/// Task ids ordered by decreasing utilization, ties by id — the
/// deterministic first-fit-decreasing visit order.
std::vector<sched::TaskId> by_utilization_desc(const sched::TaskSet& ts) {
  std::vector<sched::TaskId> order(ts.size());
  std::iota(order.begin(), order.end(), sched::TaskId{0});
  std::sort(order.begin(), order.end(),
            [&](sched::TaskId a, sched::TaskId b) {
              const double ua = ts[a].utilization();
              const double ub = ts[b].utilization();
              return ua != ub ? ua > ub : a < b;
            });
  return order;
}

/// Builds the TaskSet a core would run from a list of task ids.
sched::TaskSet subset(const sched::TaskSet& ts,
                      const std::vector<sched::TaskId>& ids) {
  sched::TaskSet out;
  for (const sched::TaskId id : ids) out.add(ts[id]);
  return out;
}

/// First-fit primary assignment under RTA admission, shared by both
/// strategies so their primary phases are identical (and so the
/// fault-aware placement is feasible only when first-fit's is —
/// backup admission can only subtract).
bool place_primaries(const sched::TaskSet& ts, std::size_t cores,
                     Placement& p, std::string& reason) {
  std::vector<std::vector<sched::TaskId>> on_core(cores);
  for (const sched::TaskId id : by_utilization_desc(ts)) {
    bool placed = false;
    for (std::size_t c = 0; c < cores && !placed; ++c) {
      std::vector<sched::TaskId> candidate = on_core[c];
      candidate.push_back(id);
      if (sched::is_feasible(subset(ts, candidate))) {
        on_core[c] = std::move(candidate);
        p.primary[id] = c;
        placed = true;
      }
    }
    if (!placed) {
      reason = "no core can schedule task '" + ts[id].name +
               "' on top of its first-fit load";
      return false;
    }
  }
  return true;
}

}  // namespace

Placement FirstFitDecreasing::place(const sched::TaskSet& ts,
                                    std::size_t cores) const {
  RTFT_EXPECTS(cores >= 1, "placement needs at least one core");
  Placement p;
  p.primary.assign(ts.size(), kNoCore);
  p.backup.assign(ts.size(), kNoCore);
  if (!place_primaries(ts, cores, p, p.reason)) return p;
  if (cores > 1) {
    // The naive baseline: next core in index order, no capacity check.
    for (sched::TaskId id = 0; id < ts.size(); ++id) {
      p.backup[id] = (p.primary[id] + 1) % cores;
    }
  }
  p.feasible = true;
  return p;
}

Placement FaultAware::place(const sched::TaskSet& ts,
                            std::size_t cores) const {
  RTFT_EXPECTS(cores >= 1, "placement needs at least one core");
  Placement p;
  p.primary.assign(ts.size(), kNoCore);
  p.backup.assign(ts.size(), kNoCore);
  if (!place_primaries(ts, cores, p, p.reason)) return p;
  if (cores == 1) {
    p.feasible = true;  // no fail-over possible, nothing to reserve.
    return p;
  }
  // Backup admission. Under the single-fault hypothesis, core j only
  // ever activates the backups whose primary lives on the one failed
  // core f — so each (f, j) group is admitted independently: RTA over
  // j's primaries plus the group plus the candidate. Primaries are
  // final by now and groups only grow, so checking the last-added
  // state covers the final configuration.
  std::vector<std::vector<sched::TaskId>> primaries_on(cores);
  for (sched::TaskId id = 0; id < ts.size(); ++id) {
    primaries_on[p.primary[id]].push_back(id);
  }
  // groups[f][j] = backups placed on j whose primary is on f.
  std::vector<std::vector<std::vector<sched::TaskId>>> groups(
      cores, std::vector<std::vector<sched::TaskId>>(cores));
  for (const sched::TaskId id : by_utilization_desc(ts)) {
    const std::size_t f = p.primary[id];
    bool placed = false;
    for (std::size_t j = 0; j < cores && !placed; ++j) {
      if (j == f) continue;  // never co-located with its own primary.
      std::vector<sched::TaskId> candidate = primaries_on[j];
      candidate.insert(candidate.end(), groups[f][j].begin(),
                       groups[f][j].end());
      candidate.push_back(id);
      if (sched::is_feasible(subset(ts, candidate))) {
        groups[f][j].push_back(id);
        p.backup[id] = j;
        placed = true;
      }
    }
    if (!placed) {
      p.reason = "no core can absorb the backup of task '" + ts[id].name +
                 "' when core " + std::to_string(f) + " fails";
      return p;
    }
  }
  p.feasible = true;
  return p;
}

bool survives_any_single_fault(const sched::TaskSet& ts,
                               const Placement& placement,
                               std::size_t cores) {
  RTFT_EXPECTS(placement.primary.size() == ts.size() &&
                   placement.backup.size() == ts.size(),
               "placement must cover the task set");
  if (!placement.feasible) return false;
  for (std::size_t f = 0; f < cores; ++f) {
    for (std::size_t j = 0; j < cores; ++j) {
      if (j == f) continue;
      std::vector<sched::TaskId> load;
      for (sched::TaskId id = 0; id < ts.size(); ++id) {
        if (placement.primary[id] == j) load.push_back(id);
      }
      for (sched::TaskId id = 0; id < ts.size(); ++id) {
        if (placement.primary[id] == f && placement.backup[id] == j) {
          if (placement.backup[id] == placement.primary[id]) return false;
          load.push_back(id);
        }
      }
      if (!sched::is_feasible(subset(ts, load))) return false;
    }
  }
  // Every task must actually have a backup for fail-over to exist.
  for (sched::TaskId id = 0; id < ts.size(); ++id) {
    if (cores > 1 && placement.backup[id] == kNoCore) return false;
  }
  return true;
}

std::vector<double> primary_utilization(const sched::TaskSet& ts,
                                        const Placement& placement,
                                        std::size_t cores) {
  RTFT_EXPECTS(placement.primary.size() == ts.size(),
               "placement must cover the task set");
  std::vector<double> u(cores, 0.0);
  for (sched::TaskId id = 0; id < ts.size(); ++id) {
    const std::size_t c = placement.primary[id];
    if (c != kNoCore && c < cores) u[c] += ts[id].utilization();
  }
  return u;
}

}  // namespace rtft::multicore
