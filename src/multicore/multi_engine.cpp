#include "multicore/multi_engine.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace rtft::multicore {

void MultiEngine::reset(std::size_t cores, const rt::EngineOptions& base,
                        Duration sync_quantum) {
  RTFT_EXPECTS(cores >= 1, "a fleet needs at least one core");
  RTFT_EXPECTS(!sync_quantum.is_negative(),
               "the sync quantum must be non-negative");
  if (engines_.size() < cores) engines_.resize(cores);
  for (std::size_t i = 0; i < cores; ++i) {
    if (engines_[i]) {
      engines_[i]->reset(base);
    } else {
      engines_[i] = std::make_unique<rt::Engine>(base);
    }
  }
  alive_.assign(cores, true);
  bindings_.clear();
  cores_ = cores;
  failed_core_ = kNoCore;
  placement_feasible_ = false;
  now_ = Instant::epoch();
  horizon_ = base.horizon;
  sync_quantum_ = sync_quantum;
}

void MultiEngine::reserve(std::size_t cores, std::size_t tasks,
                          std::size_t events) {
  if (engines_.size() < cores) engines_.resize(cores);
  for (std::size_t i = 0; i < cores; ++i) {
    if (!engines_[i]) {
      rt::EngineOptions placeholder;
      placeholder.horizon = Instant::from_ns(1);  // re-armed by reset().
      engines_[i] = std::make_unique<rt::Engine>(placeholder);
    }
    engines_[i]->reserve(tasks, events);
  }
}

rt::Engine& MultiEngine::core(std::size_t i) {
  RTFT_EXPECTS(i < cores_, "core index out of range");
  return *engines_[i];
}

bool MultiEngine::core_alive(std::size_t i) const {
  RTFT_EXPECTS(i < cores_, "core index out of range");
  return alive_[i];
}

void MultiEngine::add_placed(const sched::TaskSet& ts,
                             const Placement& placement,
                             const std::vector<rt::CostSpec>& costs) {
  RTFT_EXPECTS(placement.primary.size() == ts.size() &&
                   placement.backup.size() == ts.size(),
               "placement must cover the task set");
  RTFT_EXPECTS(costs.empty() || costs.size() == ts.size(),
               "costs must be empty or one per task");
  placement_feasible_ = placement.feasible;
  bindings_.reserve(bindings_.size() + ts.size());
  for (sched::TaskId id = 0; id < ts.size(); ++id) {
    Binding b;
    b.params = ts[id];
    if (!costs.empty()) b.cost = costs[id];
    b.primary_core = placement.primary[id];
    b.backup_core = placement.backup[id];
    if (b.primary_core != kNoCore && b.primary_core < cores_) {
      b.primary_handle =
          engines_[b.primary_core]->add_task(b.params, b.cost);
      b.placed = true;
    }
    bindings_.push_back(std::move(b));
  }
}

rt::TaskHandle MultiEngine::add_task(std::size_t core,
                                     const sched::TaskParams& params,
                                     rt::CostSpec cost) {
  RTFT_EXPECTS(core < cores_, "core index out of range");
  RTFT_EXPECTS(alive_[core], "cannot add a task to a failed core");
  return engines_[core]->add_task(params, std::move(cost));
}

void MultiEngine::run_until(Instant stop_at) {
  RTFT_EXPECTS(stop_at >= now_, "the global clock cannot run backwards");
  RTFT_EXPECTS(stop_at <= horizon_, "cannot run past the fleet horizon");
  // Lockstep: every live core reaches the same global instant before
  // any core passes it. With a positive sync quantum the fleet steps
  // in fixed global ticks — observably identical (each engine is
  // run_until-segmentation-invariant), and the equivalence suite runs
  // both ways to prove it.
  Instant t = now_;
  while (t < stop_at) {
    t = sync_quantum_.is_zero() ? stop_at
                                : std::min(t + sync_quantum_, stop_at);
    for (std::size_t i = 0; i < cores_; ++i) {
      if (alive_[i]) engines_[i]->run_until(t);
    }
  }
  if (now_ == stop_at) {  // zero-length segment still flushes.
    for (std::size_t i = 0; i < cores_; ++i) {
      if (alive_[i]) engines_[i]->run_until(stop_at);
    }
  }
  now_ = stop_at;
}

void MultiEngine::run() { run_until(horizon_); }

void MultiEngine::fail_core(std::size_t core) {
  RTFT_EXPECTS(core < cores_, "core index out of range");
  RTFT_EXPECTS(alive_[core], "core already failed");
  alive_[core] = false;
  failed_core_ = core;
  rt::Engine& dead = *engines_[core];
  for (Binding& b : bindings_) {
    if (!b.placed || b.primary_core != core) continue;
    // Jobs released but not yet terminal on the dying core are lost:
    // nobody will observe their deadlines again.
    const std::int64_t released = dead.jobs_released(b.primary_handle);
    for (std::int64_t j = 0; j < released; ++j) {
      if (dead.job_outcome(b.primary_handle, j) == rt::JobOutcome::kPending) {
        ++b.lost_jobs;
      }
    }
    b.primary_misses_at_death = dead.stats(b.primary_handle).missed;
    const std::size_t bc = b.backup_core;
    if (bc == kNoCore || bc >= cores_ || !alive_[bc]) continue;
    // Activate the passive backup: identical parameters, first release
    // at the primary's next release date *strictly after* now — a
    // release exactly at the failure instant already happened on the
    // dying core and is lost with it.
    const Instant fr = dead.first_release(b.primary_handle);
    Instant next = fr;
    if (next <= now_) {
      const std::int64_t k = (now_ - fr) / b.params.period + 1;
      next = fr + b.params.period * k;
    }
    sched::TaskParams replica = b.params;
    replica.name += "#b";
    replica.offset = next.since_epoch();
    b.backup_handle = engines_[bc]->add_task(replica, b.cost);
    b.failed_over = true;
  }
}

MultiRunReport MultiEngine::run_with_fault(const CoreFaultPlan& plan) {
  if (plan.core != kNoCore && plan.core < cores_ && plan.at >= now_ &&
      plan.at < horizon_) {
    run_until(plan.at);
    fail_core(plan.core);
  }
  run();
  return report();
}

MultiRunReport MultiEngine::report() const {
  MultiRunReport r;
  r.placement_feasible = placement_feasible_;
  r.cores = cores_;
  r.failed_core = failed_core_;
  r.tasks.reserve(bindings_.size());
  for (std::size_t id = 0; id < bindings_.size(); ++id) {
    const Binding& b = bindings_[id];
    TaskFailoverReport t;
    t.task = id;
    t.primary_core = b.primary_core;
    t.backup_core = b.backup_core;
    t.failed_over = b.failed_over;
    t.lost_jobs = b.lost_jobs;
    if (!b.placed) {
      t.outcome = FailoverOutcome::kInfeasiblePlacement;
    } else if (b.primary_core == failed_core_) {
      t.misses = b.primary_misses_at_death;
      if (b.failed_over) {
        t.misses += engines_[b.backup_core]->stats(b.backup_handle).missed;
        t.outcome = t.misses > 0 ? FailoverOutcome::kMissedDuringFailover
                                 : FailoverOutcome::kSurvived;
      } else {
        t.outcome = FailoverOutcome::kInfeasiblePlacement;
      }
    } else {
      // Tasks elsewhere: their misses (if any) come from absorbing the
      // failed core's backups, so they share the fail-over verdict.
      t.misses = engines_[b.primary_core]->stats(b.primary_handle).missed;
      t.outcome = t.misses > 0 ? FailoverOutcome::kMissedDuringFailover
                               : FailoverOutcome::kSurvived;
    }
    r.total_misses += t.misses;
    r.total_lost_jobs += t.lost_jobs;
    if (t.outcome != FailoverOutcome::kSurvived) ++r.missed_tasks;
    r.tasks.push_back(std::move(t));
  }
  r.failover_clean = r.placement_feasible && r.missed_tasks == 0;
  return r;
}

}  // namespace rtft::multicore
