// Partitioned multiprocessor placement with task-level primary/backup
// assignment (Persya & Nair, "Fault Tolerance in Real Time
// Multiprocessors — Embedded Systems", PAPERS.md).
//
// The source paper's model is single-core; this seam opens the obvious
// scale-out: every task gets a *primary* core and (when the fleet has
// more than one core) a *backup* core, with the fault hypothesis of a
// single core failing mid-run. A placement is the pure, deterministic
// map TaskId -> (primary, backup); the MultiEngine (multi_engine.hpp)
// executes it and performs the fail-over.
//
// Two strategies ship behind the Partitioner seam:
//
//   * FirstFitDecreasing — the classical bin-packing baseline. Primaries
//     are placed first-fit by decreasing utilization under RTA
//     admission; the backup is simply the next core in index order,
//     with NO capacity reserved for it. Cheap, and fine until a core
//     actually dies: the backup core may be unable to absorb the load.
//   * FaultAware — same primary phase, but a backup is admitted on core
//     j only if RTA proves j can run its own primaries *plus* every
//     backup it would have to activate when that task's primary core
//     fails. Placements it accepts therefore survive any single core
//     failure by construction (single-fault hypothesis: backups whose
//     primaries live on *different* cores never run concurrently, so
//     each failed-core group is admitted independently).
//
// Both strategies never co-locate a task with its own backup
// (primary on core i ==> backup on core j != i).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "sched/task.hpp"

namespace rtft::multicore {

/// "No core": the backup slot of a single-core placement, and the
/// primary/backup of a task the partitioner could not place.
inline constexpr std::size_t kNoCore = static_cast<std::size_t>(-1);

/// A primary/backup assignment for every task of a set.
struct Placement {
  bool feasible = false;  ///< every task received the slots it needs.
  std::string reason;     ///< why not, when !feasible.
  /// TaskId -> primary core (kNoCore only when !feasible).
  std::vector<std::size_t> primary;
  /// TaskId -> backup core; kNoCore on a single core (no fail-over
  /// possible) or when no backup could be admitted.
  std::vector<std::size_t> backup;
};

/// Placement-strategy seam. Implementations must be deterministic pure
/// functions of (task set, core count) — placements feed the sweep's
/// bit-stable fingerprint.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  [[nodiscard]] virtual Placement place(const sched::TaskSet& ts,
                                        std::size_t cores) const = 0;
  /// Stable strategy name for reports and CLI round-trips.
  [[nodiscard]] virtual const char* name() const = 0;
};

/// First-fit by decreasing utilization under RTA admission for the
/// primaries; backups take the next core in index order with no
/// capacity check (the deliberate classical baseline).
class FirstFitDecreasing final : public Partitioner {
 public:
  [[nodiscard]] Placement place(const sched::TaskSet& ts,
                                std::size_t cores) const override;
  [[nodiscard]] const char* name() const override { return "first-fit"; }
};

/// Same primary phase as FirstFitDecreasing, but every backup is
/// admitted by RTA against the worst post-failure load of its core:
/// the core's primaries plus every backup already accepted there whose
/// primary shares the failing core.
class FaultAware final : public Partitioner {
 public:
  [[nodiscard]] Placement place(const sched::TaskSet& ts,
                                std::size_t cores) const override;
  [[nodiscard]] const char* name() const override { return "fault-aware"; }
};

/// True iff, for every core f that could fail, every other core j still
/// passes RTA running its primaries plus the backups it must activate
/// (tasks with primary == f and backup == j). The global soundness
/// check FaultAware guarantees by construction; exposed for tests and
/// for auditing third-party Partitioner implementations.
[[nodiscard]] bool survives_any_single_fault(const sched::TaskSet& ts,
                                             const Placement& placement,
                                             std::size_t cores);

/// Total primary utilization per core (index -> sum of Ci/Ti). The
/// fail-over victim selector in the sweep kills the busiest core.
[[nodiscard]] std::vector<double> primary_utilization(
    const sched::TaskSet& ts, const Placement& placement, std::size_t cores);

}  // namespace rtft::multicore
