// A per-core fleet of rt::Engine instances driven from one global
// clock, with task-level primary/backup placement and mid-run core
// fail-over (ROADMAP item 4(b); Persya & Nair in PAPERS.md).
//
// Partitioned multiprocessor scheduling keeps every core a plain
// fixed-priority uniprocessor — exactly what rt::Engine models — so the
// fleet is M pooled engines stepped in lockstep: run_until(t) advances
// every live core to the same global instant (optionally in fixed
// sync quanta, proving the segmentation invariance the single-core
// engine already guarantees). Cores never exchange events; the shared
// state is the clock, the horizon and the fail-over protocol:
//
//   fail_core(c) at global time T_f
//     * core c freezes: it is never stepped again, so jobs pending
//       there are *lost* (not missed — their deadlines are no longer
//       observed by anyone) and future releases never happen.
//     * every task whose primary is c has its backup replica activated
//       on its backup core: a fresh periodic task with identical
//       parameters whose first release is the primary's next release
//       date strictly after T_f (a release exactly at T_f already
//       happened on the dying core and is lost with it). Passive
//       backups in the Persya & Nair sense: they consume no CPU until
//       the failure.
//
// The per-task verdict family this opens: kSurvived (no deadline
// missed on either replica), kMissedDuringFailover (the backup core
// could not absorb the load — first-fit placements demonstrably do
// this), kInfeasiblePlacement (no backup core was assigned at all).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "multicore/partition.hpp"
#include "runtime/engine.hpp"

namespace rtft::multicore {

/// Terminal fail-over verdict for one task.
enum class FailoverOutcome : std::uint8_t {
  kSurvived,             ///< zero deadline misses, primary and backup.
  kMissedDuringFailover, ///< at least one miss on either replica.
  kInfeasiblePlacement,  ///< the task had no backup core to fail to.
};

/// Per-task fail-over accounting.
struct TaskFailoverReport {
  sched::TaskId task = 0;
  std::size_t primary_core = kNoCore;
  std::size_t backup_core = kNoCore;
  bool failed_over = false;      ///< its primary core was the one killed.
  /// Jobs released on the primary but still pending when it died.
  /// Unrecoverable by definition — counted separately from misses.
  std::int64_t lost_jobs = 0;
  std::int64_t misses = 0;       ///< primary (before death) + backup.
  FailoverOutcome outcome = FailoverOutcome::kSurvived;
};

/// Kills `core` when the global clock reaches `at`. kNoCore = no fault.
struct CoreFaultPlan {
  std::size_t core = kNoCore;
  Instant at;
};

/// Fleet-wide outcome of a placed run (with or without a fault).
struct MultiRunReport {
  bool placement_feasible = false;
  std::size_t cores = 0;
  std::size_t failed_core = kNoCore;  ///< kNoCore when no fault fired.
  std::vector<TaskFailoverReport> tasks;  ///< TaskId order.
  std::int64_t total_misses = 0;
  std::int64_t total_lost_jobs = 0;
  /// Count of tasks whose outcome is not kSurvived.
  std::int64_t missed_tasks = 0;
  /// No misses anywhere and every fail-over had a backup to land on.
  bool failover_clean = false;
};

/// M pooled per-core engines behind one clock. reset() re-arms the
/// whole fleet without deallocating engines, so a sweep drives
/// thousands of multicore scenarios through one MultiEngine.
class MultiEngine {
 public:
  MultiEngine() = default;

  /// Re-arms the fleet: `cores` engines (reusing pooled ones), each
  /// reset with `base` (horizon, queue mode, sinks — applied to every
  /// core identically; borrowed sinks must outlive the fleet). A
  /// positive `sync_quantum` makes run_until() advance the fleet in
  /// global lockstep steps of that size instead of one segment — the
  /// observable behaviour is identical (the engines are
  /// run_until-segmentation-invariant); the knob exists for the
  /// equivalence suite.
  void reset(std::size_t cores, const rt::EngineOptions& base,
             Duration sync_quantum = Duration::zero());

  /// Pre-sizes every pooled engine (see Engine::reserve).
  void reserve(std::size_t cores, std::size_t tasks, std::size_t events);

  [[nodiscard]] std::size_t cores() const { return cores_; }
  [[nodiscard]] rt::Engine& core(std::size_t i);
  [[nodiscard]] bool core_alive(std::size_t i) const;
  [[nodiscard]] Instant now() const { return now_; }
  [[nodiscard]] Instant horizon() const { return horizon_; }

  /// Registers every task of `ts` on its placement cores and remembers
  /// the binding for fail-over. `costs` (when non-empty) supplies one
  /// CostSpec per TaskId; tasks without a primary (infeasible
  /// placement rows) are recorded but not run.
  void add_placed(const sched::TaskSet& ts, const Placement& placement,
                  const std::vector<rt::CostSpec>& costs = {});

  /// Low-level escape hatch: registers one task on one core without
  /// fail-over bookkeeping (the M=1 equivalence suite drives cores
  /// directly through core(i)).
  rt::TaskHandle add_task(std::size_t core, const sched::TaskParams& params,
                          rt::CostSpec cost = {});

  /// Advances every live core to `stop_at` (inclusive, <= horizon),
  /// in lockstep sync quanta when configured.
  void run_until(Instant stop_at);
  /// Advances every live core to the horizon.
  void run();

  /// Kills `core` at the current global instant: freezes it and
  /// activates the backup replicas of its placed tasks (see header
  /// comment for the exact release-phase rule).
  void fail_core(std::size_t core);

  /// Convenience: run to the fault instant, fail the core, run to the
  /// horizon, report. With plan.core == kNoCore (or a fault dated at
  /// or past the horizon) this is a fault-free run.
  MultiRunReport run_with_fault(const CoreFaultPlan& plan);

  /// The per-task verdicts for the current run (valid after run()).
  [[nodiscard]] MultiRunReport report() const;

 private:
  struct Binding {
    sched::TaskParams params;
    rt::CostSpec cost;
    std::size_t primary_core = kNoCore;
    std::size_t backup_core = kNoCore;
    rt::TaskHandle primary_handle = 0;
    rt::TaskHandle backup_handle = 0;
    bool placed = false;       ///< primary registered on an engine.
    bool failed_over = false;  ///< backup replica activated.
    std::int64_t lost_jobs = 0;
    std::int64_t primary_misses_at_death = 0;
  };

  std::vector<std::unique_ptr<rt::Engine>> engines_;  ///< pooled.
  std::vector<bool> alive_;
  std::vector<Binding> bindings_;  ///< TaskId order.
  std::size_t cores_ = 0;
  std::size_t failed_core_ = kNoCore;
  bool placement_feasible_ = false;
  Instant now_;
  Instant horizon_;
  Duration sync_quantum_;
};

}  // namespace rtft::multicore
